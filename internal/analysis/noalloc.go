package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// noallocRule enforces the //imcf:noalloc contract: annotated functions
// (planner scratch operations, metrics Inc/Add/Observe, span End) must
// not introduce per-call heap allocations. The rule is syntactic with
// type information — it flags the constructs that allocate on this
// repository's hot paths rather than re-deriving escape analysis:
//
//   - composite literals of slice or map type, and composite literals
//     whose address is taken (both escape);
//   - append that is not a self-append (x = append(x, ...) or
//     x = append(x[:0], ...)), the sanctioned reuse idiom whose
//     amortized growth is provisioned by cap-guarded make;
//   - function literals (closure environments allocate);
//   - any fmt call and any string concatenation;
//   - implicit or explicit conversions of concrete values to interface
//     types (boxing allocates).
//
// make under a cap guard is deliberately permitted: growing scratch to
// a high-water mark is the repository's preallocation idiom.
type noallocRule struct{}

func (noallocRule) Name() string { return RuleNoalloc }
func (noallocRule) Doc() string {
	return "functions annotated //imcf:noalloc must stay free of per-call heap allocations"
}

func (r noallocRule) Check(m *Module, rep *Reporter) { checkEachPackage(r, m, rep) }

func (noallocRule) CheckPackage(m *Module, pkg *Package, rep *Reporter) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !noallocAnnotated(fd) || fd.Body == nil {
				continue
			}
			checkNoallocBody(pkg.Info, rep, funcName(fd), fd.Body)
		}
	}
}

// checkNoallocBody walks one annotated function body.
func checkNoallocBody(info *types.Info, rep *Reporter, name string, body *ast.BlockStmt) {
	// seen marks nodes already judged by their parent (the composite
	// literal under &, the append call vetted by its assignment).
	seen := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			rep.Report(x.Pos(), RuleNoalloc, "%s: closure allocates its environment", name)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := x.X.(*ast.CompositeLit); ok {
					seen[lit] = true
					rep.Report(x.Pos(), RuleNoalloc,
						"%s: address of composite literal escapes to the heap", name)
				}
			}
		case *ast.CompositeLit:
			if seen[x] {
				return true
			}
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				rep.Report(x.Pos(), RuleNoalloc,
					"%s: %s literal allocates", name, typeKind(info.Types[x].Type))
			}
		case *ast.AssignStmt:
			checkNoallocAssign(info, rep, name, x, seen)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.Types[x].Type) {
				rep.Report(x.Pos(), RuleNoalloc, "%s: string concatenation allocates", name)
			}
		case *ast.CallExpr:
			checkNoallocCall(info, rep, name, x, seen)
		}
		return true
	})
}

// typeKind names the allocating composite kind for the message.
func typeKind(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// checkNoallocAssign vets append self-assignments and flags string
// concatenation through +=.
func checkNoallocAssign(info *types.Info, rep *Reporter, name string, as *ast.AssignStmt, seen map[ast.Node]bool) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isStringType(info.Types[as.Lhs[0]].Type) {
		rep.Report(as.Pos(), RuleNoalloc, "%s: string concatenation allocates", name)
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) {
			continue
		}
		seen[call] = true
		if !selfAppend(as.Lhs[i], call) {
			rep.Report(call.Pos(), RuleNoalloc,
				"%s: append without preallocated capacity (not a self-append into reused scratch)", name)
		}
	}
}

// isBuiltinAppend reports whether the call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// selfAppend reports whether the vetted assignment grows a slice in
// place: lhs = append(lhs, ...), lhs = append(lhs[:k], ...), or
// lhs = append(scratch[:0], ...) — appending into a truncated view of
// reused scratch, which is alloc-free at steady state.
func selfAppend(lhs ast.Expr, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	target := types.ExprString(lhs)
	first := call.Args[0]
	if types.ExprString(first) == target {
		return true
	}
	if sl, ok := first.(*ast.SliceExpr); ok {
		if types.ExprString(sl.X) == target {
			return true
		}
		// append(scratch[:0], ...): reset-and-refill of a named
		// scratch buffer under a different result name.
		if low, ok := sl.Low.(*ast.BasicLit); (sl.Low == nil) || (ok && low.Value == "0") {
			return sl.High == nil || types.ExprString(sl.High) == "0"
		}
	}
	return false
}

// checkNoallocCall flags fmt calls, un-vetted appends and implicit
// interface conversions at call boundaries.
func checkNoallocCall(info *types.Info, rep *Reporter, name string, call *ast.CallExpr, seen map[ast.Node]bool) {
	if isBuiltinAppend(info, call) {
		if !seen[call] {
			rep.Report(call.Pos(), RuleNoalloc,
				"%s: append result discarded or not reassigned to its source", name)
		}
		return
	}
	if pkgPath, fn, ok := pkgFuncCall(info, call); ok && pkgPath == "fmt" {
		rep.Report(call.Pos(), RuleNoalloc, "%s: fmt.%s allocates", name, fn)
		return
	}
	tv, found := info.Types[call.Fun]
	if !found || tv.IsBuiltin() {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): boxing when T is an interface.
		if len(call.Args) == 1 && types.IsInterface(tv.Type) &&
			!types.IsInterface(info.Types[call.Args[0]].Type) && !info.Types[call.Args[0]].IsNil() {
			rep.Report(call.Pos(), RuleNoalloc,
				"%s: conversion to interface %s boxes its operand", name, tv.Type.String())
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pt := paramType(sig, params, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg]
		if at.IsNil() || at.Type == nil || types.IsInterface(at.Type) {
			continue
		}
		rep.Report(arg.Pos(), RuleNoalloc,
			"%s: implicit conversion of %s to interface %s allocates", name, at.Type.String(), pt.String())
	}
}

// paramType resolves the declared type of argument i, unrolling
// variadic parameters.
func paramType(sig *types.Signature, params *types.Tuple, i int, ellipsis bool) types.Type {
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if ellipsis {
			if i == params.Len()-1 {
				return last
			}
			return nil
		}
		sl, ok := last.(*types.Slice)
		if !ok {
			return nil
		}
		return sl.Elem()
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}
