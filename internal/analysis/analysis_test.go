package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// fixtureModule loads the fixture module once per test binary: the
// source importer's standard-library type-checking dominates load time.
var fixtureModule = sync.OnceValues(func() (*Module, error) {
	return LoadModule(filepath.Join("testdata", "src", "fixtures"))
})

func loadFixtures(t *testing.T) *Module {
	t.Helper()
	m, err := fixtureModule()
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	return m
}

// TestRulesGolden runs each rule alone over the fixture module and
// compares its findings with the rule's golden file. Every rule must
// fire on its positive fixtures; the negative fixtures assert silence
// by omission from the golden.
func TestRulesGolden(t *testing.T) {
	m := loadFixtures(t)
	for _, rule := range AllRules() {
		t.Run(rule.Name(), func(t *testing.T) {
			var sb strings.Builder
			for _, f := range Run(m, []Rule{rule}) {
				sb.WriteString(f.String())
				sb.WriteByte('\n')
			}
			got := sb.String()
			golden := filepath.Join("testdata", rule.Name()+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
			if got == "" {
				t.Errorf("rule %s produced no findings on its positive fixtures", rule.Name())
			}
		})
	}
}

// TestRuleDocs ensures every rule carries a non-empty one-line doc for
// the driver's -list output.
func TestRuleDocs(t *testing.T) {
	seen := make(map[string]bool)
	for _, rule := range AllRules() {
		if rule.Name() == "" || rule.Doc() == "" {
			t.Errorf("rule %T has empty name or doc", rule)
		}
		if strings.ContainsAny(rule.Doc(), "\n") {
			t.Errorf("rule %s doc is not one line", rule.Name())
		}
		if seen[rule.Name()] {
			t.Errorf("duplicate rule name %s", rule.Name())
		}
		seen[rule.Name()] = true
	}
}

// TestRealModuleClean is the acceptance criterion as a regression test:
// the repository's own tree must lint clean — every real finding fixed
// or explicitly waived, none baselined.
func TestRealModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the full module via the source importer is slow")
	}
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	if m.Path != "github.com/imcf/imcf" {
		t.Fatalf("unexpected module path %q", m.Path)
	}
	findings := Run(m, AllRules())
	for _, f := range findings {
		t.Errorf("repository tree is not lint-clean: %s", f)
	}
}

// TestFindingString pins the conventional file:line:col rendering.
func TestFindingString(t *testing.T) {
	f := Finding{Rule: "noalloc", File: "a/b.go", Line: 3, Col: 7, Message: "boom"}
	if got, want := f.String(), "a/b.go:3:7: [noalloc] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestWaivedDirectives checks the waiver index directly: same-line and
// line-above coverage, and rule specificity.
func TestWaivedDirectives(t *testing.T) {
	m := loadFixtures(t)
	rep := NewReporter(m)
	// DropWaived in internal/store/errdrop.go: //nolint:errcheck sits on
	// line 40, //imcf:allow err-drop on line 41 covering line 42.
	file := "internal/store/errdrop.go"
	if !rep.Waived(RuleErrDrop, file, 40) {
		t.Errorf("nolint:errcheck on %s:40 not indexed", file)
	}
	if !rep.Waived(RuleErrDrop, file, 42) {
		t.Errorf("imcf:allow on %s:41 does not cover the following line", file)
	}
	if rep.Waived(RuleNoalloc, file, 42) {
		t.Error("err-drop waiver must not waive noalloc")
	}
	if rep.Waived(RuleErrDrop, file, 7) {
		t.Error("waiver leaked to an uncovered line")
	}
}

// TestModuleLookupAndScope covers the module accessors the rules build
// on.
func TestModuleLookupAndScope(t *testing.T) {
	m := loadFixtures(t)
	pkg := m.Lookup("fixtures.test/internal/core")
	if pkg == nil {
		t.Fatal("Lookup failed for fixture core package")
	}
	if !pkg.InScope("internal/core") {
		t.Error("suffix scope match failed")
	}
	if pkg.InScope("ternal/core") {
		t.Error("InScope must match whole path segments only")
	}
	if m.Lookup("no/such/pkg") != nil {
		t.Error("Lookup invented a package")
	}
	if got := m.Lookup("fixtures.test"); got != nil {
		t.Error("fixture module has no root package; Lookup should return nil")
	}
}
