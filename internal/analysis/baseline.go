package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is a committed set of grandfathered findings. Entries are
// keyed by rule, file and message — deliberately not by line number, so
// unrelated edits to a file do not invalidate its baseline. Each entry
// suppresses one matching finding; two identical findings need two
// identical lines.
//
// The on-disk format is one entry per line, tab-separated:
//
//	rule<TAB>file<TAB>message
//
// with '#' comments and blank lines ignored.
type Baseline struct {
	// counts maps entry key → number of findings it may suppress.
	counts map[string]int
	// files lists the distinct file paths mentioned, for staleness
	// checks.
	files []string
}

func baselineKey(rule, file, message string) string {
	return rule + "\t" + file + "\t" + message
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so a repository with nothing grandfathered needs no file
// at all.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{counts: make(map[string]int)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	seenFile := make(map[string]bool)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed baseline entry (want rule<TAB>file<TAB>message)", path, i+1)
		}
		b.counts[baselineKey(parts[0], parts[1], parts[2])]++
		if !seenFile[parts[1]] {
			seenFile[parts[1]] = true
			b.files = append(b.files, parts[1])
		}
	}
	return b, nil
}

// Filter returns the findings not suppressed by the baseline, in their
// original order.
func (b *Baseline) Filter(findings []Finding) []Finding {
	if len(b.counts) == 0 {
		return findings
	}
	remaining := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	var out []Finding
	for _, f := range findings {
		k := baselineKey(f.Rule, f.File, f.Message)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// Stale returns the baselined file paths that no longer exist under
// root — drift that means the baseline shrank out from under its
// entries and must be regenerated.
func (b *Baseline) Stale(root string) []string {
	var stale []string
	for _, f := range b.files {
		if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(f))); os.IsNotExist(err) {
			stale = append(stale, f)
		}
	}
	sort.Strings(stale)
	return stale
}

// FormatBaseline renders findings in the baseline file format, sorted,
// with a header comment documenting the format.
func FormatBaseline(findings []Finding) string {
	var sb strings.Builder
	sb.WriteString("# imcf-lint baseline: grandfathered findings, one per line.\n")
	sb.WriteString("# Format: rule<TAB>file<TAB>message. Delete lines as findings are fixed.\n")
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		lines = append(lines, baselineKey(f.Rule, f.File, f.Message))
	}
	sort.Strings(lines)
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}
