package analysis

import (
	"go/ast"
	"go/types"
)

// logHygienePackages are the serving-path subtrees whose output must
// flow through internal/obs: unstructured prints bypass the log ring,
// lose the tenant/trace correlation the flight recorder filters on,
// and are invisible to /debug/logs. cmd/ binaries keep their plain
// stderr narration and are deliberately out of scope.
var logHygienePackages = []string{
	"internal/daemon",
	"internal/controller",
	"internal/fleet",
	"internal/cloud",
	"internal/store",
	"internal/persistence",
	"internal/journal",
}

// logHygieneForbidden maps package → forbidden print-style functions.
// fmt's writer- and string-returning forms (Fprintf, Sprintf) stay
// legal: they build values, they don't emit output.
var logHygieneForbidden = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

// logHygieneRule forbids fmt.Print*/log.Print*/println in the serving
// packages — all of their output routes through internal/obs so every
// record lands in the ring with its correlation identity.
type logHygieneRule struct{}

func (logHygieneRule) Name() string { return RuleLogHygiene }
func (logHygieneRule) Doc() string {
	return "serving packages log through internal/obs; fmt.Print*/log.Print*/println bypass the ring and lose tenant/trace correlation"
}

func (r logHygieneRule) Check(m *Module, rep *Reporter) { checkEachPackage(r, m, rep) }

func (logHygieneRule) CheckPackage(m *Module, pkg *Package, rep *Reporter) {
	if !inAnyScope(pkg, logHygienePackages) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, fn, ok := pkgFuncCall(pkg.Info, call); ok && logHygieneForbidden[pkgPath][fn] {
				rep.Report(call.Pos(), RuleLogHygiene,
					"%s.%s bypasses the obs layer; log through obs.L() so the record is correlated and queryable", pkgPath, fn)
				return true
			}
			// The predeclared println/print builtins write straight to
			// stderr with no structure at all.
			if id, ok := call.Fun.(*ast.Ident); ok {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "println" || id.Name == "print") {
					rep.Report(call.Pos(), RuleLogHygiene,
						"builtin %s bypasses the obs layer; log through obs.L() so the record is correlated and queryable", id.Name)
				}
			}
			return true
		})
	}
}
