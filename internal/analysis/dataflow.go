package analysis

// forwardFlow runs a forward dataflow analysis over a CFG to fixpoint
// and returns the entry state of every block (unreached blocks keep
// the zero S). The client supplies the lattice:
//
//	clone    deep-copies a state (states are mutated in place)
//	merge    joins src into dst, reporting whether dst changed
//	transfer folds one block's nodes over a state and returns the
//	         block's out-state (it may mutate and return its argument)
//
// The worklist is FIFO over block indices, so iteration order — and
// therefore termination behavior — is deterministic. Termination
// requires merge to be monotone over a finite lattice, which all the
// rule lattices (finite sets of lock keys / variable objects) are.
func forwardFlow[S any](c *CFG, entry S, clone func(S) S, merge func(dst, src S) bool, transfer func(*Block, S) S) []S {
	n := len(c.Blocks)
	in := make([]S, n)
	seen := make([]bool, n)
	queued := make([]bool, n)
	in[cfgEntry] = entry
	seen[cfgEntry] = true
	work := []int{cfgEntry}
	queued[cfgEntry] = true
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		queued[i] = false
		out := transfer(c.Blocks[i], clone(in[i]))
		for _, s := range c.Blocks[i].Succs {
			changed := false
			if !seen[s] {
				seen[s] = true
				in[s] = clone(out)
				changed = true
			} else if merge(in[s], out) {
				changed = true
			}
			if changed && !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	return in
}
