package analysis

import (
	"go/ast"
	"go/types"
)

// pkgFuncCall resolves a call of the form pkgname.Func(...) to the
// imported package's path and the function name. It returns ok=false
// for method calls, local calls, builtins and conversions.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// calleeSignature returns the signature of an ordinary call, and
// ok=false for builtins and type conversions.
func calleeSignature(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	tv, found := info.Types[call.Fun]
	if !found || tv.IsType() || tv.IsBuiltin() {
		return nil, false
	}
	sig, isSig := tv.Type.Underlying().(*types.Signature)
	return sig, isSig
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// returnsError reports whether the call's result tuple contains an
// error, and at which positions.
func returnsError(info *types.Info, call *ast.CallExpr) (positions []int, n int) {
	sig, ok := calleeSignature(info, call)
	if !ok {
		return nil, 0
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			positions = append(positions, i)
		}
	}
	return positions, res.Len()
}

// exprObj resolves an identifier or field selector to its object: the
// *types.Var of a variable or struct field, or nil.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			return s.Obj()
		}
		return info.Uses[x.Sel] // package-qualified name
	case *ast.ParenExpr:
		return exprObj(info, x.X)
	}
	return nil
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatType reports whether t's underlying type is a floating-point
// basic type.
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
