package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// tenantIsolationPackages are the subtrees that handle tenant-scoped
// keys and directories: the daemon (which routes every tenant to its
// store namespace and on-disk layout) and the controller (which reads
// and writes tenant state through the Adapter it is handed).
var tenantIsolationPackages = []string{
	"internal/daemon",
	"internal/controller",
}

// tenantIsolationRule is the taint analysis guarding PR 7's isolation
// invariant: a tenant's keys and paths are unrepresentable outside its
// namespace because every key prefix flows through tenantStorePrefix
// (whose IDs ParseTenantID has vetted) and every tenant directory
// through tenantDir. The rule tracks two facts per variable over the
// CFG:
//
//   - must-clean (intersection join): the value is a compile-time
//     constant, the result of a sanctioned mediator
//     (tenantStorePrefix, tenantDir), or a value ParseTenantID has
//     validated on every path. Only clean values may reach store key
//     sinks — Adapter methods (Get/Put/Delete/Keys/GetJSON/PutJSON)
//     and the store.Namespace prefix argument.
//   - may-dynamic (union join): the value was assembled ad hoc —
//     filepath.Join/path.Join, fmt.Sprintf, strings.Join or string
//     concatenation. Dynamic values may not reach on-disk path sinks
//     (persistence.Open*/store Options.Dir); operator-configured
//     paths pass through untouched, but anything composed per tenant
//     must come from tenantDir.
//
// Mediators and the sanitizer are recognized by name
// (tenantStorePrefix, tenantDir, ParseTenantID): the names are the
// audited contract — a helper claiming one must enforce it.
type tenantIsolationRule struct{}

func (tenantIsolationRule) Name() string { return RuleTenantIsolation }
func (tenantIsolationRule) Doc() string {
	return "tenant keys/paths reach store.Adapter and disk only via Namespace/tenantStorePrefix/tenantDir or ParseTenantID-validated values"
}

func (r tenantIsolationRule) Check(m *Module, rep *Reporter) { checkEachPackage(r, m, rep) }

func (tenantIsolationRule) CheckPackage(m *Module, pkg *Package, rep *Reporter) {
	if !inAnyScope(pkg, tenantIsolationPackages) {
		return
	}
	for _, f := range pkg.Files {
		for _, u := range funcUnits(f) {
			checkTaintFunc(pkg.Info, rep, u)
		}
	}
}

// storeKeyMethods are the Adapter (and namespaced-view) methods whose
// first argument is a key in the tenant-shared keyspace.
var storeKeyMethods = map[string]bool{
	"Get": true, "Put": true, "Delete": true, "Keys": true,
	"GetJSON": true, "PutJSON": true,
}

// taintMediators produce values sanctioned for their sink class.
var taintMediators = map[string]bool{
	"tenantStorePrefix": true,
	"tenantDir":         true,
}

// dynStringBuilders are the package functions whose results count as
// ad-hoc string assembly.
var dynStringBuilders = map[string]map[string]bool{
	"path/filepath": {"Join": true},
	"path":          {"Join": true},
	"fmt":           {"Sprintf": true, "Sprint": true, "Sprintln": true},
	"strings":       {"Join": true},
}

// taintState tracks per-variable facts; see the rule comment.
type taintState struct {
	clean map[types.Object]bool // must-clean: intersection join
	dyn   map[types.Object]bool // may-dynamic: union join
}

func newTaintState() *taintState {
	return &taintState{clean: make(map[types.Object]bool), dyn: make(map[types.Object]bool)}
}

func cloneTaintState(s *taintState) *taintState {
	c := newTaintState()
	for o := range s.clean {
		c.clean[o] = true
	}
	for o := range s.dyn {
		c.dyn[o] = true
	}
	return c
}

func mergeTaintState(dst, src *taintState) bool {
	changed := false
	for o := range dst.clean {
		if !src.clean[o] {
			delete(dst.clean, o)
			changed = true
		}
	}
	for o := range src.dyn {
		if !dst.dyn[o] {
			dst.dyn[o] = true
			changed = true
		}
	}
	return changed
}

func checkTaintFunc(info *types.Info, rep *Reporter, u funcUnit) {
	cfg := BuildCFG(u.body)
	transfer := func(b *Block, s *taintState) *taintState {
		return transferTaint(info, b, s, nil)
	}
	ins := forwardFlow(cfg, newTaintState(), cloneTaintState, mergeTaintState, transfer)
	reach := cfg.Reachable()
	for i, blk := range cfg.Blocks {
		if !reach[i] || ins[i] == nil {
			continue
		}
		transferTaint(info, blk, cloneTaintState(ins[i]), rep)
	}
}

func transferTaint(info *types.Info, b *Block, s *taintState, rep *Reporter) *taintState {
	for _, n := range b.Nodes {
		walkLeaf(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				taintAssign(info, x, s)
			case *ast.ValueSpec:
				for i, name := range x.Names {
					var rhs ast.Expr
					if i < len(x.Values) {
						rhs = x.Values[i]
					}
					taintSetVar(info, s, info.Defs[name], rhs)
				}
			case *ast.CallExpr:
				taintCall(info, x, s, rep)
			case *ast.CompositeLit:
				if rep != nil {
					checkDirField(info, x, s, rep)
				}
			}
			return true
		})
	}
	return s
}

func taintAssign(info *types.Info, as *ast.AssignStmt, s *taintState) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				taintSetVar(info, s, lhsObj(info, lhs), as.Rhs[i])
			}
			return
		}
		// Tuple assignment: results of a call, unknown provenance.
		for _, lhs := range as.Lhs {
			taintSetVar(info, s, lhsObj(info, lhs), nil)
		}
	case token.ADD_ASSIGN:
		// s += x is string assembly when s is a string.
		for _, lhs := range as.Lhs {
			if obj := lhsObj(info, lhs); obj != nil && isStringType(info.Types[lhs].Type) {
				delete(s.clean, obj)
				s.dyn[obj] = true
			}
		}
	}
}

// lhsObj resolves an assignment target identifier to its object.
func lhsObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	if def := info.Defs[id]; def != nil {
		return def
	}
	return info.Uses[id]
}

// taintSetVar records the facts a variable inherits from rhs (nil rhs
// means unknown provenance).
func taintSetVar(info *types.Info, s *taintState, obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	delete(s.clean, obj)
	delete(s.dyn, obj)
	if rhs == nil {
		return
	}
	if keyClean(info, s, rhs) {
		s.clean[obj] = true
	}
	if dynTainted(info, s, rhs) {
		s.dyn[obj] = true
	}
}

// calleeName resolves a call's function name for mediator/sanitizer
// matching ("" for indirect calls through non-selector expressions).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// keyClean reports whether e is sanctioned for a store key sink.
func keyClean(info *types.Info, s *taintState, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			return true // named constant
		}
		return s.clean[info.Uses[e]]
	case *ast.CallExpr:
		return taintMediators[calleeName(e)]
	default:
		tv, ok := info.Types[ast.Expr(e)]
		return ok && tv.Value != nil // constant expression (literals, folded concat)
	}
}

// dynTainted reports whether e is ad-hoc assembled (may-dynamic).
func dynTainted(info *types.Info, s *taintState, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return s.dyn[info.Uses[e]]
	case *ast.CallExpr:
		if taintMediators[calleeName(e)] {
			return false
		}
		if pkgPath, fn, ok := pkgFuncCall(info, e); ok {
			return dynStringBuilders[pkgPath][fn]
		}
		return false
	case *ast.BinaryExpr:
		if e.Op != token.ADD || !isStringType(info.Types[ast.Expr(e)].Type) {
			return false
		}
		tv, ok := info.Types[ast.Expr(e)]
		return !(ok && tv.Value != nil) // constant concat folds; anything else is assembly
	default:
		return false
	}
}

// taintCall applies a call's state effects (sanitization) and, in the
// reporting pass, checks its sink arguments.
func taintCall(info *types.Info, call *ast.CallExpr, s *taintState, rep *Reporter) {
	// Sanitizer: ParseTenantID(v) vets v's charset; after the call v is
	// safe as a key component on this path. (The guard is recognized
	// optimistically — validation-then-use is the repo idiom.)
	if calleeName(call) == "ParseTenantID" && len(call.Args) == 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				s.clean[obj] = true
				delete(s.dyn, obj)
			}
		}
	}
	if rep == nil {
		return
	}
	// Key sinks: Adapter-shaped methods on internal/store types.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && storeKeyMethods[sel.Sel.Name] && len(call.Args) >= 1 {
		if pkgPath, _, ok := methodRecvType(info, sel); ok && pkgPathInScope(pkgPath, "internal/store") {
			if !keyClean(info, s, call.Args[0]) {
				rep.Report(call.Args[0].Pos(), RuleTenantIsolation,
					"store key %s is unmediated: use a constant, tenantStorePrefix/tenantDir, or a ParseTenantID-validated value",
					types.ExprString(call.Args[0]))
			}
		}
	}
	pkgPath, fn, ok := pkgFuncCall(info, call)
	if !ok {
		return
	}
	// The Namespace prefix IS the tenant boundary.
	if pkgPathInScope(pkgPath, "internal/store") && fn == "Namespace" && len(call.Args) >= 2 {
		if !keyClean(info, s, call.Args[1]) {
			rep.Report(call.Args[1].Pos(), RuleTenantIsolation,
				"store.Namespace prefix %s is unmediated: derive it via tenantStorePrefix on a ParseTenantID-validated ID",
				types.ExprString(call.Args[1]))
		}
	}
	// Path sinks: per-tenant persistence roots.
	if pkgPathInScope(pkgPath, "internal/persistence") && len(call.Args) >= 1 {
		switch fn {
		case "Open", "OpenJournal", "OpenJournalOpts", "OpenJournalFile":
			if dynTainted(info, s, call.Args[0]) {
				rep.Report(call.Args[0].Pos(), RuleTenantIsolation,
					"on-disk path %s is assembled ad hoc: derive tenant directories via tenantDir",
					types.ExprString(call.Args[0]))
			}
		}
	}
}

// checkDirField flags dynamically assembled Dir fields in store option
// literals (the sharded backend's per-tenant directories).
func checkDirField(info *types.Info, lit *ast.CompositeLit, s *taintState, rep *Reporter) {
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !pkgPathInScope(named.Obj().Pkg().Path(), "internal/store") {
		return
	}
	name := named.Obj().Name()
	if name != "Options" && name != "ShardedOptions" {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Dir" {
			continue
		}
		if dynTainted(info, s, kv.Value) {
			rep.Report(kv.Value.Pos(), RuleTenantIsolation,
				"store %s.Dir %s is assembled ad hoc: derive tenant directories via tenantDir",
				name, types.ExprString(kv.Value))
		}
	}
}
