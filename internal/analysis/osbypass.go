package analysis

import (
	"go/ast"
)

// osBypassPackages are the subtrees whose durable writes must flow
// through the injected faultfs.FS so the kill-at-every-failpoint crash
// suites (DESIGN.md §11) actually exercise them. A direct os call here
// is a write the fault injector can never kill — the crash suite's
// guarantees silently stop covering it.
var osBypassPackages = []string{
	"internal/store",
	"internal/persistence",
	"internal/journal",
	"internal/daemon",
}

// osWriteFuncs are the os package's mutating filesystem entry points.
// Read-only access (os.ReadFile, os.ReadDir, os.Stat) is allowed: the
// crash suites reason about durability of writes, and faultfs.FS
// deliberately keeps a small surface.
var osWriteFuncs = map[string]bool{
	"Create": true, "OpenFile": true, "WriteFile": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"MkdirAll": true, "Mkdir": true, "Truncate": true,
}

// osBypassRule flags direct os mutations in the durability-critical
// packages; they must route through the faultfs.FS seam instead.
type osBypassRule struct{}

func (osBypassRule) Name() string { return RuleOSBypass }
func (osBypassRule) Doc() string {
	return "durable writes in store/persistence/journal/daemon must use the injected faultfs.FS, not os directly"
}

func (r osBypassRule) Check(m *Module, rep *Reporter) { checkEachPackage(r, m, rep) }

func (osBypassRule) CheckPackage(m *Module, pkg *Package, rep *Reporter) {
	if !inAnyScope(pkg, osBypassPackages) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, fn, ok := pkgFuncCall(pkg.Info, call); ok && pkgPath == "os" && osWriteFuncs[fn] {
				rep.Report(call.Pos(), RuleOSBypass,
					"os.%s bypasses the faultfs seam; use the injected faultfs.FS so crash suites cover this write", fn)
			}
			return true
		})
	}
}
