package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The determinism rule's scope is derived from the module's package
// graph, not a hand-maintained allowlist: every internal/* package is
// in scope unless determinismExcluded names it with a justification.
// New packages are therefore covered by default — the failure mode
// where internal/fleet shipped before anyone remembered to add it to
// the old determinismPackages list cannot recur. cmd/* binaries are
// out of scope structurally: they are operational entry points, not
// replay-path code.
//
// Exclusions are exact module-relative paths. Each entry must say why
// nondeterminism is acceptable there.
var determinismExcluded = map[string]string{
	"internal/metrics":     "timing substrate: histograms/spans measure real wall time by design",
	"internal/simclock":    "the injectable clock seam itself wraps time.Now",
	"internal/bench":       "benchmark harness: measures wall time by design",
	"internal/analysis":    "lint tooling, not replay-path code; times its own rule execution",
	"internal/faultfs":     "test seam for crash injection, not replay-path code",
	"internal/store":       "durability engine: fsync-latency metrics sample the wall clock",
	"internal/persistence": "recording service: segment names and sync cadences are wall-time-based",
	"internal/daemon":      "serving process: cron scheduling and uptime reporting read real time",
	"internal/controller":  "serving path: cron/poller cadence is wall-time-driven",
	"internal/cloud":       "relay: request timing and backoff are wall-time-driven",
	"internal/client":      "SDK: retry backoff jitter is wall-time-driven",
	"internal/devicesim":   "device emulators: simulate real hardware latencies",
}

// determinismInScope derives the rule's scope from the package graph:
// module-relative internal/* packages minus the justified exclusions.
func determinismInScope(m *Module, p *Package) bool {
	rel := strings.TrimPrefix(p.Path, m.Path+"/")
	if rel == p.Path || !strings.HasPrefix(rel, "internal/") {
		return false
	}
	_, excluded := determinismExcluded[rel]
	return !excluded
}

// determinismRule forbids the three ways nondeterminism has crept into
// replayable engines: wall-clock reads (time.Now and friends), global
// math/rand (any use that is not a seeded generator constructed from an
// injected seed), and ranging over maps when the iteration feeds
// ordered output (accumulating floats, appending to slices that are not
// subsequently sorted, or any early break/return).
type determinismRule struct{}

func (determinismRule) Name() string { return RuleDeterminism }
func (determinismRule) Doc() string {
	return "every internal package not on the justified exclusion list must stay replay-deterministic"
}

func (r determinismRule) Check(m *Module, rep *Reporter) { checkEachPackage(r, m, rep) }

func (determinismRule) CheckPackage(m *Module, pkg *Package, rep *Reporter) {
	if !determinismInScope(m, pkg) {
		return
	}
	for _, f := range pkg.Files {
		checkDeterminismFile(pkg.Info, rep, f)
	}
}

func inAnyScope(p *Package, subtrees []string) bool {
	for _, s := range subtrees {
		if p.InScope(s) {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time package's wall-clock reads. Duration
// arithmetic, timers and formatting are fine; sampling the clock is not.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// seededRandConstructors construct a generator from an injected source
// and are therefore allowed; every other math/rand selector implies the
// process-global generator (or an unseeded convenience wrapper).
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

func checkDeterminismFile(info *types.Info, rep *Reporter, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			pkgPath, fn, ok := pkgFuncCall(info, x)
			if !ok {
				break
			}
			if pkgPath == "time" && wallClockFuncs[fn] {
				rep.Report(x.Pos(), RuleDeterminism,
					"time.%s reads the wall clock; inject time through the config instead", fn)
			}
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !seededRandConstructors[fn] {
				rep.Report(x.Pos(), RuleDeterminism,
					"%s.%s uses the shared global generator; use a rand.New(...) seeded from the config", pkgPath, fn)
			}
		case *ast.RangeStmt:
			checkMapRange(info, rep, f, x)
		}
		return true
	})
}

// checkMapRange classifies one range-over-map statement. Safe shapes:
//
//   - writes keyed by the loop variable (out[k] = ...) — order cannot
//     matter because each key lands in its own slot;
//   - integer or boolean accumulation (counting) — associative and
//     exact;
//   - append to a slice that a following statement sorts (the repo's
//     collect-then-sort idiom).
//
// Hazardous shapes: floating-point accumulation (rounding depends on
// order), appends never sorted, and any break/return inside the loop
// (first-match depends on order).
func checkMapRange(info *types.Info, rep *Reporter, f *ast.File, rs *ast.RangeStmt) {
	if !isMapType(info.Types[rs.X].Type) {
		return
	}
	h := &mapRangeHazards{info: info, file: f, rs: rs}
	h.scan()
	for _, hz := range h.found {
		rep.Report(hz.pos, RuleDeterminism, "map iteration order feeds ordered output: %s", hz.what)
	}
}

type hazard struct {
	pos  token.Pos
	what string
}

type mapRangeHazards struct {
	info *types.Info
	file *ast.File
	rs   *ast.RangeStmt
	// appended records slice targets appended to inside the loop that
	// still need a sort after it.
	appended []appendTarget
	found    []hazard
}

type appendTarget struct {
	expr string
	pos  token.Pos
}

func (h *mapRangeHazards) scan() {
	ast.Inspect(h.rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if x.Tok == token.BREAK && x.Label == nil {
				h.found = append(h.found, hazard{x.Pos(), "break makes the result depend on which key is seen first"})
			}
		case *ast.ReturnStmt:
			h.found = append(h.found, hazard{x.Pos(), "return inside the loop depends on iteration order"})
		case *ast.AssignStmt:
			h.assign(x)
		}
		return true
	})
	h.resolveAppends()
}

func (h *mapRangeHazards) assign(as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN || as.Tok == token.MUL_ASSIGN {
		for _, lhs := range as.Lhs {
			if h.keyedByLoopVar(lhs) {
				continue
			}
			if isFloatType(h.info.Types[lhs].Type) {
				h.found = append(h.found, hazard{as.Pos(),
					"floating-point accumulation rounds differently per iteration order"})
			}
		}
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "append" {
			if _, isBuiltin := h.info.Uses[id].(*types.Builtin); isBuiltin {
				h.appended = append(h.appended, appendTarget{
					expr: types.ExprString(as.Lhs[i]),
					pos:  call.Pos(),
				})
			}
		}
	}
}

// keyedByLoopVar reports whether lhs is an index expression whose index
// mentions the range statement's key variable (out[k] or out[k].f),
// which makes per-iteration writes land in disjoint slots.
func (h *mapRangeHazards) keyedByLoopVar(lhs ast.Expr) bool {
	keyObj := h.loopKeyObj()
	if keyObj == nil {
		return false
	}
	for {
		switch x := lhs.(type) {
		case *ast.IndexExpr:
			uses := false
			ast.Inspect(x.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && h.info.Uses[id] == keyObj {
					uses = true
				}
				return true
			})
			return uses
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

func (h *mapRangeHazards) loopKeyObj() types.Object {
	id, ok := h.rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	return h.info.Defs[id]
}

// sortFuncs are the sort/slices functions that restore a canonical
// order after a collect loop.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// resolveAppends keeps only append targets with no sort call following
// the loop in the enclosing statement list.
func (h *mapRangeHazards) resolveAppends() {
	if len(h.appended) == 0 {
		return
	}
	for _, at := range h.appended {
		if !h.sortedAfterLoop(at.expr) {
			h.found = append(h.found, hazard{at.pos,
				"appends " + at.expr + " in map order with no sort afterwards"})
		}
	}
}

// sortedAfterLoop scans the enclosing function for a sort call whose
// first argument is (or slices) the appended target, positioned after
// the loop. The function-wide scan is deliberately permissive: the
// repository's idiom sorts immediately after the collect loop, and a
// sort anywhere downstream in the same function restores determinism.
func (h *mapRangeHazards) sortedAfterLoop(target string) bool {
	scope := enclosingFunc(h.file, h.rs.Pos())
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < h.rs.End() {
			return true
		}
		pkgPath, fn, ok := pkgFuncCall(h.info, call)
		if !ok {
			return true
		}
		base := pkgBase(pkgPath)
		if !sortFuncs[base][fn] || len(call.Args) == 0 {
			return true
		}
		arg := call.Args[0]
		if sl, isSlice := arg.(*ast.SliceExpr); isSlice {
			arg = sl.X
		}
		if types.ExprString(arg) == target {
			found = true
		}
		return true
	})
	return found
}

// enclosingFunc returns the innermost function declaration or literal
// containing pos, or the file itself when none does.
func enclosingFunc(f *ast.File, pos token.Pos) ast.Node {
	var best ast.Node = f
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				best = n
			}
		}
		return true
	})
	return best
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
