// Package hygiene exercises the metrics-hygiene rule's label-arity
// check and provides the observation site for the Observed family.
package hygiene

import "fixtures.test/internal/metrics"

// decisions declares one label.
var decisions = metrics.NewCounterVec("fixture_decisions_total", "By decision.", "decision")

// ObserveGood is the negative fixture: matching arity, plus the
// observation site that keeps metrics.Observed out of the orphan list.
func ObserveGood() {
	metrics.Observed.Inc()
	decisions.With("accept").Inc()
}

// ObserveBad is the positive fixture: two label values against a
// one-label family.
func ObserveBad() {
	decisions.With("accept", "extra").Inc()
}

// ObserveChainedBad resolves the family inline — positive fixture for
// the chained-constructor receiver.
func ObserveChainedBad() {
	metrics.NewCounterVec("fixture_routes_total", "By route.", "route", "method").With("only-one").Inc()
}

// latency is the exemplar-check fixture histogram.
var latency = metrics.NewHistogram("fixture_latency_seconds", "Latency.", 0.1, 1)

// emptyTrace is a named empty constant — the exemplar check must see
// through it.
const emptyTrace = ""

// ObserveExemplarGood is the negative fixture: a dynamic trace ID.
func ObserveExemplarGood(trace string) {
	latency.ObserveExemplar(0.2, trace)
}

// ObserveExemplarBad is the positive fixture: statically empty trace
// IDs (literal and named constant) never attach an exemplar.
func ObserveExemplarBad() {
	latency.ObserveExemplar(0.2, "")
	latency.ObserveExemplar(0.2, emptyTrace)
}
