// Package racy hosts the atomic-mix fixtures. The rule is module-wide,
// so the package path does not matter.
package racy

import "sync/atomic"

type stats struct {
	// hits is written atomically but also read plainly — the positive
	// fixture.
	hits int64
	// clean is only ever touched through sync/atomic — the negative
	// fixture.
	clean int64
}

// Touch records one event on both fields, atomically.
func (s *stats) Touch() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.clean, 1)
}

// Racy reads hits without atomic — positive fixture.
func (s *stats) Racy() int64 {
	return s.hits
}

// Clean reads through atomic — negative fixture.
func (s *stats) Clean() int64 {
	return atomic.LoadInt64(&s.clean)
}
