// Package metrics is a minimal stub of the real registry, just enough
// for the metrics-hygiene fixtures to type-check.
package metrics

// Counter is a stub counter.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// NewCounter registers a stub counter.
func NewCounter(name, help string) *Counter { return &Counter{} }

// CounterVec is a stub labelled counter family.
type CounterVec struct{ labels []string }

// NewCounterVec registers a stub labelled family.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{labels: labels}
}

// With resolves a child counter.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{} }

// Histogram is a stub histogram with exemplar support.
type Histogram struct{ n uint64 }

// NewHistogram registers a stub histogram.
func NewHistogram(name, help string, bounds ...float64) *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.n++ }

// ObserveExemplar records one sample with a trace-ID exemplar.
func (h *Histogram) ObserveExemplar(v float64, trace string) { h.n++ }
