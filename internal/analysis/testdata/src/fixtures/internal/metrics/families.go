package metrics

// Canonical families of the fixture module.
var (
	// Observed has an observation site in internal/hygiene — the
	// metrics-hygiene negative fixture.
	Observed = NewCounter("fixture_observed_total", "Observed by internal/hygiene.")

	// Orphan is registered but never observed anywhere — the
	// metrics-hygiene positive fixture.
	Orphan = NewCounter("fixture_orphan_total", "Never observed.")
)
