// Package journal is the fixture for families.go collection outside
// internal/metrics.
package journal

// Append is the observation site keeping JEvents out of the orphan
// list.
func Append() {
	JEvents.Inc()
}
