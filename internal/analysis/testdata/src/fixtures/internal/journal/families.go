package journal

import "fixtures.test/internal/metrics"

// Families of the fixture journal package — exercises the generalized
// families.go collection (any package, not just internal/metrics).
var (
	// JEvents is observed in journal.go — negative fixture.
	JEvents = metrics.NewCounter("fixture_journal_events_total", "Observed in journal.go.")

	// JOrphan is never observed — positive fixture.
	JOrphan = metrics.NewCounter("fixture_journal_orphan_total", "Never observed.")
)
