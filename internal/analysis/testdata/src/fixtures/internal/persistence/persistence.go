// Package persistence provides the path-sink entry points the
// tenantisolation fixtures call; the rule matches them by package
// suffix and function name.
package persistence

// Service is the fixture recording service.
type Service struct{ dir string }

// Open opens a persistence directory.
func Open(dir string) *Service { return &Service{dir: dir} }

// Journal is the fixture decision log.
type Journal struct{ path string }

// OpenJournal opens a journal under dir.
func OpenJournal(dir string) *Journal { return &Journal{path: dir} }
