// Adapter shapes backing the tenantisolation fixtures: the rule
// matches key sinks by receiver package suffix (internal/store) and
// option types by name, so the fixture daemon package needs these to
// exist. Methods return no error so err-drop stays quiet at call
// sites.
package store

// Adapter is the fixture key-value surface.
type Adapter struct{}

// Get reads one key.
func (Adapter) Get(key string) string { return key }

// Put writes one key.
func (Adapter) Put(key, value string) {}

// Delete removes one key.
func (Adapter) Delete(key string) {}

// Keys lists keys under a prefix.
func (Adapter) Keys(prefix string) []string { return nil }

// Namespace scopes an adapter to a key prefix.
func Namespace(parent Adapter, prefix string) Adapter { return parent }

// Options configures a single-directory store.
type Options struct {
	Dir string
}

// ShardedOptions configures the sharded backend.
type ShardedOptions struct {
	Dir    string
	Shards int
}
