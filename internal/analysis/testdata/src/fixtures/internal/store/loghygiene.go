// loghygiene fixtures: unstructured prints in a serving package are
// positives; value-building fmt forms are the negative.
package store

import (
	"fmt"
	"log"
)

// NoisyRecovery narrates through stdout/stderr instead of the obs
// layer — every call here is a positive.
func NoisyRecovery(path string, dropped int) {
	fmt.Println("store: replaying wal", path)
	fmt.Printf("store: dropped %d bytes\n", dropped)
	log.Printf("store: torn tail in %s", path)
	log.Println("store: recovery complete")
	println("store: done")
}

// BuildsValues: Sprintf and Fprintf construct or route values rather
// than emitting console output, so they stay legal.
func BuildsValues(path string) (string, error) {
	msg := fmt.Sprintf("wal at %s", path)
	if path == "" {
		return "", fmt.Errorf("empty path for %s", msg)
	}
	return msg, nil
}
