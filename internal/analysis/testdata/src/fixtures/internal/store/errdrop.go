// Package store hosts the err-drop fixtures; its import path suffix
// puts it on the rule's serving-path scope.
package store

import "errors"

type handle struct{}

// Close fails, so its error matters.
func (h *handle) Close() error { return errors.New("close failed") }

func mayFail() error { return nil }

func lookup() (int, error) { return 0, nil }

// DropBad is the positive fixture: three ways to lose an error.
func DropBad(h *handle) int {
	h.Close()        // bare statement
	_ = mayFail()    // blank single assignment
	v, _ := lookup() // blank in a multi-assign
	return v
}

// DropGood is the negative fixture: every error is consumed.
func DropGood(h *handle) error {
	if err := mayFail(); err != nil {
		return err
	}
	v, err := lookup()
	if err != nil {
		return err
	}
	_ = v
	return h.Close()
}

// DropWaived documents its intentional drops — negative fixture for
// both waiver spellings, plus the defer/go exemption.
func DropWaived(h *handle) {
	h.Close() //nolint:errcheck // best-effort fixture shutdown
	//imcf:allow err-drop fixture: result is advisory
	_ = mayFail()
	defer h.Close()
	go mayFail()
}
