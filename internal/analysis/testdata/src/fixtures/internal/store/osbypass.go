// osbypass fixtures: direct os mutations in the store package are
// positives; read-only access is the negative.
package store

import "os"

// WriteDirect bypasses the faultfs seam three ways.
func WriteDirect(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/wal")
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(dir+"/wal", dir+"/wal.bak")
}

// ReadsAllowed: read-only os access stays legal — the crash suites
// reason about durability of writes.
func ReadsAllowed(dir string) ([]os.DirEntry, error) {
	return os.ReadDir(dir)
}

// staleWaiver carries a directive that suppresses nothing — the
// stale-waiver detector's positive fixture.
func staleWaiver() int {
	//imcf:allow noalloc fixture: deliberately stale — nothing below allocates
	return 1
}
