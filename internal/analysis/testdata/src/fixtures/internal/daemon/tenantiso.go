// Package daemon hosts the tenantisolation and goleak fixtures; its
// import path suffix puts it on both rules' scopes.
package daemon

import (
	"errors"
	"path/filepath"

	"fixtures.test/internal/persistence"
	"fixtures.test/internal/store"
)

// ParseTenantID is the fixture sanitizer; the rule recognizes it by
// name and treats values it has vetted as clean key components.
func ParseTenantID(id string) error {
	if id == "" {
		return errors.New("daemon: empty tenant ID")
	}
	return nil
}

// tenantStorePrefix is the fixture key mediator.
func tenantStorePrefix(id string) string { return "t/" + id + "/" }

// tenantDir is the fixture path mediator.
func tenantDir(base, id string) string { return filepath.Join(base, "tenants", id) }

// RawKey passes an ad-hoc concatenated key to an Adapter method — the
// key-sink positive.
func RawKey(ad store.Adapter, id string) string {
	return ad.Get("t/" + id + "/mrt")
}

// RawNamespace builds the Namespace prefix by hand — the prefix-sink
// positive.
func RawNamespace(ad store.Adapter, id string) store.Adapter {
	prefix := "t/" + id + "/"
	return store.Namespace(ad, prefix)
}

// RawDir assembles the per-tenant directory ad hoc — positives for
// both the persistence path sink and the store Dir field.
func RawDir(base, id string) store.ShardedOptions {
	dir := filepath.Join(base, "tenants", id)
	persistence.Open(dir)
	return store.ShardedOptions{Dir: dir}
}

// Mediated is the negative fixture: every key and path flows through
// the audited helpers.
func Mediated(ad store.Adapter, base, id string) error {
	if err := ParseTenantID(id); err != nil {
		return err
	}
	view := store.Namespace(ad, tenantStorePrefix(id))
	view.Put("mrt", "rules")
	dir := tenantDir(base, id)
	persistence.Open(dir)
	opts := store.Options{Dir: dir}
	_ = opts
	return nil
}

// Validated uses the raw ID directly, legal because ParseTenantID has
// vetted it on every path reaching the sink.
func Validated(ad store.Adapter, id string) string {
	if err := ParseTenantID(id); err != nil {
		return ""
	}
	return ad.Get(id)
}

// Unvalidated uses the raw parameter without any vetting — the
// must-clean analysis keeps it tainted.
func Unvalidated(ad store.Adapter, id string) string {
	return ad.Get(id)
}
