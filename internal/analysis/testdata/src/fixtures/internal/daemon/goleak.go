// Goroutine-leak fixtures: joinless launches are positives; WaitGroup,
// quit-channel and completion-send shapes are negatives.
package daemon

import "sync"

func work() int { return 0 }

func serve() {}

// LeakLoop launches a joinless infinite loop — positive.
func LeakLoop() {
	go func() {
		for {
			_ = work()
		}
	}()
}

// LeakNamed launches a named function, hiding the body from the
// intraprocedural check — positive.
func LeakNamed() {
	go serve()
}

// JoinedWG is joined through a WaitGroup — negative.
func JoinedWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work()
	}()
	wg.Wait()
}

// JoinedQuit parks on a quit channel the owner controls — negative.
func JoinedQuit(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				_ = work()
			}
		}
	}()
}

// JoinedSend signals completion into a channel the owner consumes —
// negative.
func JoinedSend(done chan<- error) {
	go func() {
		done <- nil
	}()
}
