// Package core hosts the noalloc and determinism fixtures; its import
// path suffix puts it in both rules' scope.
package core

import "fmt"

type scratch struct {
	buf []int
}

func sink(v any) {}

// NoallocBad is the positive fixture: it commits every violation class
// the contract names.
//
//imcf:noalloc
func NoallocBad(s *scratch, xs []int) string {
	lit := []int{1, 2}                 // slice literal
	byName := map[string]int{}         // map literal
	esc := &scratch{}                  // address of composite literal escapes
	grown := append(xs, 3)             // append that is not a self-append
	f := func() int { return len(xs) } // closure
	msg := fmt.Sprintf("%d", len(xs))  // fmt
	msg = msg + "!"                    // string concatenation
	sink(f())                          // implicit interface conversion of int
	_ = any(lit)                       // explicit conversion to interface
	return fmt.Sprint(byName, esc, grown, msg)
}

// NoallocGood is the negative fixture: the sanctioned scratch-reuse
// idioms only.
//
//imcf:noalloc
func NoallocGood(s *scratch, xs []int) int {
	if cap(s.buf) < len(xs) {
		s.buf = make([]int, 0, len(xs)) // cap-guarded growth is allowed
	}
	s.buf = s.buf[:0]
	for _, x := range xs {
		s.buf = append(s.buf, x) // self-append into reused scratch
	}
	out := append(s.buf[:0], xs...) // reset-and-refill view of scratch
	total := 0
	for _, x := range out {
		total += x
	}
	return total
}

// Unannotated allocates freely and must produce no findings: the
// contract binds only annotated functions.
func Unannotated(xs []int) []int {
	out := []int{}
	out = append(out, xs...)
	return out
}

func sinkAll(vs ...any) {}

// VariadicBad boxes concrete values into a variadic interface
// parameter — positive fixture for the variadic unrolling.
//
//imcf:noalloc
func VariadicBad(a, b int) {
	sinkAll(a, b)
}

// VariadicGood spreads an existing interface slice — negative fixture:
// the slice parameter itself is not an interface type.
//
//imcf:noalloc
func VariadicGood(vs []any) {
	sinkAll(vs...)
}

// Reslice is the negative fixture for the self-slice append form and
// the receiver-qualified name in findings.
//
//imcf:noalloc
func (s *scratch) Reslice(x int) {
	if len(s.buf) > 1 {
		s.buf = append(s.buf[:1], x)
	}
	drop := append(s.buf[:3], x) // positive: truncation that is not a reset
	_ = drop
}
