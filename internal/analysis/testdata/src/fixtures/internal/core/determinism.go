package core

import (
	"math/rand"
	"slices"
	"sort"
	"time"
)

// ClockBad samples the wall clock — positive fixture.
func ClockBad() int64 {
	return time.Now().Unix()
}

// ClockWaived samples the wall clock under a documented waiver —
// negative fixture for the directive machinery.
func ClockWaived() int64 {
	//imcf:allow determinism fixture: timing feeds no results
	return time.Now().Unix()
}

// RandBad draws from the shared global generator — positive fixture.
func RandBad() int {
	return rand.Int()
}

// RandGood draws from a generator seeded by the caller — negative
// fixture (constructors are the sanctioned path).
func RandGood(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}

// SumBad accumulates floats in map order — positive fixture (rounding
// depends on iteration order).
func SumBad(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// CollectBad appends keys in map order and never sorts — positive
// fixture.
func CollectBad(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return names
}

// CollectGood sorts after the collect loop — negative fixture (the
// repository's collect-then-sort idiom).
func CollectGood(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IndexGood writes each key into its own slot — negative fixture
// (order cannot matter).
func IndexGood(m map[string]int, out map[string]int) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// CountGood accumulates integers — negative fixture (exact and
// associative).
func CountGood(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// FirstBad returns from inside the loop — positive fixture (the result
// is whichever key iteration yields first).
func FirstBad(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// BreakBad stops at an arbitrary element — positive fixture.
func BreakBad(m map[string]int, limit int) int {
	total := 0
	for _, v := range m {
		total += v
		if total > limit {
			break
		}
	}
	return total
}

// AccumKeyedGood accumulates floats into slots keyed by the loop
// variable — negative fixture (each key owns its slot, so order cannot
// matter).
func AccumKeyedGood(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

// CollectSlicesGood uses the slices package's sort — negative fixture
// for the second sanctioned sort family.
func CollectSlicesGood(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// CollectResortGood sorts a re-sliced view of the collected slice —
// negative fixture for the slice-expression sort argument.
func CollectResortGood(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys[:])
	return keys
}
