// Package controller hosts the lockdiscipline fixtures; its import
// path suffix puts it on the rule's serving-path scope. Every
// error-returning call is consumed so the err-drop goldens stay
// untouched.
package controller

import "sync"

// fsyncer stands in for a durable file handle: the rule classifies any
// Sync method as an fsync by name.
type fsyncer struct{}

// Sync pretends to flush to durable media.
func (fsyncer) Sync() error { return nil }

type engine struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	file fsyncer
	out  chan int
	n    int
}

// HeldFsync is the positive fixture for blocking I/O under a mutex:
// the deferred unlock keeps the return legal, but the fsync still runs
// with e.mu held.
func (e *engine) HeldFsync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.file.Sync()
}

// HeldSend holds a read lock across a channel send.
func (e *engine) HeldSend(v int) {
	e.rw.RLock()
	e.out <- v
	e.rw.RUnlock()
}

// DoubleLock may re-acquire a mutex it already holds.
func (e *engine) DoubleLock(again bool) {
	e.mu.Lock()
	if again {
		e.mu.Lock()
	}
	e.mu.Unlock()
}

// LeakyReturn returns early with the lock held and no deferred unlock.
func (e *engine) LeakyReturn(stop bool) {
	e.mu.Lock()
	if stop {
		return
	}
	e.mu.Unlock()
}

// flushLocked follows the *Locked convention: the caller holds the
// guard, so returning without unlocking is fine — but blocking under
// the caller's lock is still flagged.
func (e *engine) flushLocked() error {
	return e.file.Sync()
}

// CleanCounter is the negative fixture: lock, deferred unlock, no
// blocking work inside the critical section.
func (e *engine) CleanCounter() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	return e.n
}

// BranchyUnlock is a negative flow fixture: both branches release the
// lock before the function returns.
func (e *engine) BranchyUnlock(flush bool) error {
	e.mu.Lock()
	if flush {
		e.mu.Unlock()
		return e.file.Sync()
	}
	e.mu.Unlock()
	return nil
}

// WaivedFsync documents its intentional held-lock fsync, exercising
// the waiver path (and keeping this directive non-stale).
func (e *engine) WaivedFsync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	//imcf:allow lockdiscipline fixture: batch-leader fsync under the lock is the audited design
	return e.file.Sync()
}
