module fixtures.test

go 1.21
