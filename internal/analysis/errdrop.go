package analysis

import (
	"go/ast"
	"go/types"
)

// errDropPackages are the serving-path subtrees where a silently
// dropped error loses data or masks a failed shutdown: the daemon, the
// live controller, the cloud relay and the persistent store.
var errDropPackages = []string{
	"internal/daemon",
	"internal/controller",
	"internal/cloud",
	"internal/store",
}

// errDropRule flags calls on the serving path whose error result is
// discarded: a call used as a bare statement, or an error assigned to
// the blank identifier. Deferred and go-routine calls are exempt — the
// language offers no direct way to consume their results, and the
// repository's convention for intentional drops there (and anywhere
// else) is an explicit //nolint:errcheck or //imcf:allow err-drop
// waiver with a justification.
type errDropRule struct{}

func (errDropRule) Name() string { return RuleErrDrop }
func (errDropRule) Doc() string {
	return "serving-path packages must not discard error returns"
}

func (r errDropRule) Check(m *Module, rep *Reporter) { checkEachPackage(r, m, rep) }

func (errDropRule) CheckPackage(m *Module, pkg *Package, rep *Reporter) {
	if !inAnyScope(pkg, errDropPackages) {
		return
	}
	for _, f := range pkg.Files {
		checkErrDropFile(pkg.Info, rep, f)
	}
}

func checkErrDropFile(info *types.Info, rep *Reporter, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.ExprStmt:
			call, ok := x.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if positions, _ := returnsError(info, call); len(positions) > 0 {
				rep.Report(call.Pos(), RuleErrDrop,
					"error returned by %s is discarded", types.ExprString(call.Fun))
			}
		case *ast.AssignStmt:
			checkErrDropAssign(info, rep, x)
		}
		return true
	})
}

// checkErrDropAssign flags error results assigned to the blank
// identifier, in both the single-call multi-assign form
// (v, _ := f()) and the pairwise form (_ = f()).
func checkErrDropAssign(info *types.Info, rep *Reporter, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		positions, _ := returnsError(info, call)
		for _, p := range positions {
			if p < len(as.Lhs) && isBlank(as.Lhs[p]) {
				rep.Report(call.Pos(), RuleErrDrop,
					"error returned by %s assigned to _", types.ExprString(call.Fun))
			}
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBlank(as.Lhs[i]) {
			continue
		}
		if positions, n := returnsError(info, call); n == 1 && len(positions) == 1 {
			rep.Report(call.Pos(), RuleErrDrop,
				"error returned by %s assigned to _", types.ExprString(call.Fun))
		}
	}
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
