package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
)

// metricsHygieneRule keeps the metric registry honest in three
// directions: every family declared in a families.go (any package —
// internal/metrics, internal/journal, ...) must be observed at least
// once outside its declaration file (a registered-but-never-fed family
// silently exports zeros forever); every labelled-counter call site
// must pass exactly as many label values as the family declares (the
// registry panics on mismatch at runtime; the rule catches it at lint
// time); and every exemplar attachment must pass a trace ID that is not
// statically empty (ObserveExemplar silently drops the exemplar then —
// the caller meant Observe).
type metricsHygieneRule struct{}

func (metricsHygieneRule) Name() string { return RuleMetricsHygiene }
func (metricsHygieneRule) Doc() string {
	return "metric families must be observed, label arities must match, exemplar traces must not be statically empty"
}

// vecConstructors maps constructor names to the number of leading
// non-label arguments (name, help).
var vecConstructors = map[string]int{
	"NewCounterVec": 2,
	"CounterVec":    2,
	"NewGaugeVec":   2,
	"GaugeVec":      2,
}

func (metricsHygieneRule) Check(m *Module, rep *Reporter) {
	families := collectFamilies(m)
	vecs := collectVecArities(m)
	checkObservations(m, rep, families)
	checkWithArities(m, rep, vecs)
	checkExemplars(m, rep)
}

// family is one package-level metric family declared in families.go.
type family struct {
	name string
	pos  ast.Node
	obj  types.Object
}

// collectFamilies gathers the package-level vars of every families.go
// in the module — internal/metrics declares the serving-path families,
// internal/journal the provenance ones, and any future package joins
// the check just by following the naming convention.
func collectFamilies(m *Module) []family {
	var out []family
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if filepath.Base(m.Fset.Position(f.Pos()).Filename) != "families.go" {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							out = append(out, family{name: name.Name, pos: name, obj: obj})
						}
					}
				}
			}
		}
	}
	return out
}

// checkObservations reports families never used outside families.go.
func checkObservations(m *Module, rep *Reporter, families []family) {
	if len(families) == 0 {
		return
	}
	used := make(map[types.Object]bool)
	for _, pkg := range m.Pkgs {
		for id, obj := range pkg.Info.Uses {
			if filepath.Base(m.Fset.Position(id.Pos()).Filename) == "families.go" {
				continue
			}
			used[obj] = true
		}
	}
	for _, fam := range families {
		if !used[fam.obj] {
			rep.Report(fam.pos.Pos(), RuleMetricsHygiene,
				"metric family %s is declared but has no observation site", fam.name)
		}
	}
}

// collectVecArities records, for every variable initialized from a
// labelled-counter constructor, how many labels the family declares.
func collectVecArities(m *Module) map[types.Object]int {
	arities := make(map[types.Object]int)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.ValueSpec:
					for i, name := range x.Names {
						if i >= len(x.Values) {
							break
						}
						recordVecArity(pkg.Info, arities, pkg.Info.Defs[name], x.Values[i])
					}
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						break
					}
					for i, rhs := range x.Rhs {
						recordVecArity(pkg.Info, arities, exprDefOrUse(pkg.Info, x.Lhs[i]), rhs)
					}
				}
				return true
			})
		}
	}
	return arities
}

// exprDefOrUse resolves an assignment target to its object whether the
// statement defines (:=) or reuses (=) it.
func exprDefOrUse(info *types.Info, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
	}
	return exprObj(info, e)
}

// recordVecArity inspects one initializer; if it is a labelled-counter
// constructor call, the target's label arity is recorded.
func recordVecArity(info *types.Info, arities map[types.Object]int, target types.Object, init ast.Expr) {
	if target == nil {
		return
	}
	if n, ok := vecCallArity(info, init); ok {
		arities[target] = n
	}
}

// vecCallArity returns the label count of a NewCounterVec /
// Registry.CounterVec call expression.
func vecCallArity(info *types.Info, e ast.Expr) (int, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || call.Ellipsis.IsValid() {
		return 0, false
	}
	var fn string
	if _, name, isPkgCall := pkgFuncCall(info, call); isPkgCall {
		fn = name
	} else if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
		fn = sel.Sel.Name
	} else {
		return 0, false
	}
	lead, isVec := vecConstructors[fn]
	if !isVec || len(call.Args) < lead {
		return 0, false
	}
	return len(call.Args) - lead, true
}

// checkWithArities verifies every .With(...) call against the declared
// label arity of its receiver family.
func checkWithArities(m *Module, rep *Reporter, arities map[types.Object]int) {
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Ellipsis.IsValid() {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "With" {
					return true
				}
				want, ok := withReceiverArity(pkg.Info, arities, sel.X)
				if !ok {
					return true
				}
				if len(call.Args) != want {
					rep.Report(call.Pos(), RuleMetricsHygiene,
						"With called with %d label value(s); family declares %d label(s)",
						len(call.Args), want)
				}
				return true
			})
		}
	}
}

// withReceiverArity resolves the receiver of a With call to a declared
// family arity: either a variable holding a vec, or a chained
// constructor call NewCounterVec(...).With(...).
func withReceiverArity(info *types.Info, arities map[types.Object]int, recv ast.Expr) (int, bool) {
	if obj := exprObj(info, recv); obj != nil {
		n, ok := arities[obj]
		return n, ok
	}
	return vecCallArity(info, recv)
}

// checkExemplars reports ObserveExemplar call sites whose trace
// argument is statically the empty string: the histogram drops the
// exemplar at runtime, so the call site meant Observe (or forgot to
// thread the trace ID through).
func checkExemplars(m *Module, rep *Reporter) {
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "ObserveExemplar" || len(call.Args) != 2 {
					return true
				}
				if tv, ok := pkg.Info.Types[call.Args[1]]; ok && tv.Value != nil {
					if constant.StringVal(tv.Value) == "" {
						rep.Report(call.Pos(), RuleMetricsHygiene,
							"ObserveExemplar with a statically empty trace ID never attaches an exemplar; use Observe or pass the trace")
					}
				}
				return true
			})
		}
	}
}
