package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goLeakPackages are the long-lived serving processes where an
// unjoined goroutine outlives its owner: the daemon, the fleet
// scheduler and the controller's cron/poller machinery.
var goLeakPackages = []string{
	"internal/daemon",
	"internal/fleet",
	"internal/controller",
}

// goLeakRule flags goroutine launches with no visible join discipline.
// A launched function literal is considered joined when its body
// contains any of:
//
//   - a WaitGroup Done (deferred or not) — the launcher Waits;
//   - a channel receive, select or range-over-channel — the goroutine
//     parks on a quit/ctx-done/work channel the owner controls;
//   - a channel send — a completion signal the owner consumes.
//
// Launching a named function (`go f()`) hides the body from this
// intraprocedural check and is flagged: wrap the call in a literal
// that carries the join.
type goLeakRule struct{}

func (goLeakRule) Name() string { return RuleGoLeak }
func (goLeakRule) Doc() string {
	return "goroutines in daemon/fleet/controller need a WaitGroup, ctx-done/quit-channel or completion-send join"
}

func (r goLeakRule) Check(m *Module, rep *Reporter) { checkEachPackage(r, m, rep) }

func (goLeakRule) CheckPackage(m *Module, pkg *Package, rep *Reporter) {
	if !inAnyScope(pkg, goLeakPackages) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, isLit := g.Call.Fun.(*ast.FuncLit)
			if !isLit {
				rep.Report(g.Pos(), RuleGoLeak,
					"goroutine launches a named function; wrap it in a literal that joins (WaitGroup/quit channel/completion send)")
				return true
			}
			if !goroutineJoined(pkg, lit.Body) {
				rep.Report(g.Pos(), RuleGoLeak,
					"goroutine has no join on any path: add a WaitGroup Done, a quit/ctx-done channel, or a completion send")
			}
			return true
		})
	}
}

// goroutineJoined scans a launched literal's body for a join marker.
func goroutineJoined(pkg *Package, body *ast.BlockStmt) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			joined = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				joined = true
			}
		case *ast.RangeStmt:
			if ch, ok := pkg.Info.Types[x.X]; ok {
				if _, isChan := ch.Type.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if pkgPath, typeName, ok := methodRecvType(pkg.Info, sel); ok &&
					pkgPath == "sync" && typeName == "WaitGroup" {
					joined = true
				}
			}
		}
		return !joined
	})
	return joined
}
