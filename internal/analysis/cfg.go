package analysis

import (
	"go/ast"
	"go/token"
)

// This file implements the per-function control-flow graph the
// flow-sensitive rules (lockdiscipline, tenantisolation) are built on.
// The graph is deliberately lightweight: basic blocks over the
// statement list, with the control constructs — if/for/range/switch/
// type-switch/select/return/break/continue/goto/labeled — lowered to
// edges. Composite statements are never placed in a block themselves;
// instead their evaluated parts (an if's init statement and condition,
// a for's post statement, a case clause's expressions, a select
// clause's communication) are placed as leaf nodes in the block where
// they execute, so a transfer function can fold over Block.Nodes
// without ever re-entering a subtree that belongs to another block.
// Function literals are likewise opaque leaves: each FuncLit body is
// analyzed as its own CFG by the rules.

// Block is one basic block: a straight-line run of leaf nodes
// (statements and header expressions) with edges to its successors.
type Block struct {
	Index int
	// Nodes are the leaf statements and control-header expressions
	// executed in order when the block runs.
	Nodes []ast.Node
	// Succs are the indices of the possible successor blocks.
	Succs []int
}

// CFG is the control-flow graph of one function body. Blocks[Entry] is
// where execution starts; Blocks[Exit] is a synthetic, empty block
// every return (and the implicit end-of-body fall-off) flows to.
type CFG struct {
	Blocks []*Block
	Exit   int
	// FallsThrough is the block whose implicit end-of-body edge feeds
	// Exit, or -1 when the body ends in a terminating statement. When
	// the block is reachable, control can fall off the closing brace
	// with that block's out-state.
	FallsThrough int
}

const cfgEntry = 0

// Reachable returns the set of blocks reachable from the entry.
func (c *CFG) Reachable() []bool {
	seen := make([]bool, len(c.Blocks))
	stack := []int{cfgEntry}
	seen[cfgEntry] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.Blocks[i].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// branchTarget is one enclosing construct break/continue can jump to.
type branchTarget struct {
	label      string
	breakTo    int
	continueTo int // -1 for switch/select (not a loop)
}

type pendingGoto struct {
	from  int
	label string
}

type cfgBuilder struct {
	cfg *CFG
	cur int
	// targets is the stack of enclosing breakable constructs.
	targets []branchTarget
	// fallTo is the stack of fallthrough targets inside switch clauses.
	fallTo []int
	labels map[string]int
	gotos  []pendingGoto
	// curLabel is the label attached to the construct about to be
	// built, consumed by the next loop/switch/select.
	curLabel string
}

// BuildCFG lowers a function body to basic blocks.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{FallsThrough: -1},
		labels: make(map[string]int),
	}
	b.newBlock() // entry
	exit := b.newBlock()
	b.cfg.Exit = exit
	b.cur = cfgEntry
	b.stmtList(body.List)
	// Implicit return at the closing brace.
	b.cfg.FallsThrough = b.cur
	b.edge(b.cur, exit)
	for _, g := range b.gotos {
		if to, ok := b.labels[g.label]; ok {
			b.edge(g.from, to)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() int {
	i := len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, &Block{Index: i})
	return i
}

func (b *cfgBuilder) edge(from, to int) {
	blk := b.cfg.Blocks[from]
	for _, s := range blk.Succs {
		if s == to {
			return
		}
	}
	blk.Succs = append(blk.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.cfg.Blocks[b.cur]
	blk.Nodes = append(blk.Nodes, n)
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // anything after is dead
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		blk := b.newBlock()
		b.edge(b.cur, blk)
		b.cur = blk
		b.labels[s.Label.Name] = blk
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""
	default:
		// Leaf statement: assignments, declarations, expression
		// statements, defer, go, send, inc/dec, empty.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur
	after := b.newBlock()
	b.edge(thenEnd, after)
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	b.add(s.Init)
	head := b.newBlock()
	b.edge(b.cur, head)
	after := b.newBlock()
	contTo := head
	post := -1
	if s.Post != nil {
		post = b.newBlock()
		contTo = post
	}
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		b.edge(head, after) // condition false
	}
	body := b.newBlock()
	b.edge(head, body)
	b.targets = append(b.targets, branchTarget{label, after, contTo})
	b.cur = body
	b.stmtList(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	if post >= 0 {
		b.edge(b.cur, post)
		b.cur = post
		b.add(s.Post)
	}
	b.edge(b.cur, head)
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	b.add(s.X)
	after := b.newBlock()
	b.edge(head, after) // exhausted
	body := b.newBlock()
	b.edge(head, body)
	b.targets = append(b.targets, branchTarget{label, after, head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	b.edge(b.cur, head)
	b.cur = after
}

// switchStmt lowers expression and type switches: tag is the switch
// expression (nil for type switches), assign the type switch's guard.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.add(init)
	if tag != nil {
		b.add(tag)
	}
	b.add(assign)
	head := b.cur
	after := b.newBlock()
	// Create every clause block first so fallthrough can target the
	// lexically next clause.
	var clauses []*ast.CaseClause
	blocks := make([]int, 0, len(body.List))
	hasDefault := false
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		clauses = append(clauses, cc)
		blk := b.newBlock()
		b.edge(head, blk)
		blocks = append(blocks, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after) // no case matched
	}
	b.targets = append(b.targets, branchTarget{label, after, -1})
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fall := -1
		if i+1 < len(blocks) {
			fall = blocks[i+1]
		}
		b.fallTo = append(b.fallTo, fall)
		b.stmtList(cc.Body)
		b.fallTo = b.fallTo[:len(b.fallTo)-1]
		b.edge(b.cur, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, branchTarget{label, after, -1})
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		b.add(cc.Comm)
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.edge(b.cur, t.breakTo)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueTo >= 0 && (label == "" || t.label == label) {
				b.edge(b.cur, t.continueTo)
				break
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{b.cur, label})
	case token.FALLTHROUGH:
		if n := len(b.fallTo); n > 0 && b.fallTo[n-1] >= 0 {
			b.edge(b.cur, b.fallTo[n-1])
		}
	}
	b.cur = b.newBlock() // anything after the jump is dead
}
