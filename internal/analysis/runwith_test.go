package analysis

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

func ruleNames(rules []Rule) []string {
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name()
	}
	return names
}

// TestStaleWaivers runs the full suite over the fixture module and
// checks that exactly the deliberately dead directive surfaces: every
// other fixture waiver suppresses a finding, and //nolint comments are
// outside the staleness contract.
func TestStaleWaivers(t *testing.T) {
	m := loadFixtures(t)
	rep := NewReporter(m)
	rules := AllRules()
	RunWith(rep, m, rules, 4)
	stale := rep.StaleWaivers(ruleNames(rules))
	if len(stale) != 1 {
		t.Fatalf("StaleWaivers = %v, want exactly the seeded dead directive", stale)
	}
	w := stale[0]
	if w.File != "internal/store/osbypass.go" || w.Rule != RuleNoalloc {
		t.Errorf("stale waiver = %+v, want the noalloc directive in internal/store/osbypass.go", w)
	}
	if got, want := w.String(), "internal/store/osbypass.go:31: //imcf:allow noalloc"; got != want {
		t.Errorf("Waiver.String() = %q, want %q", got, want)
	}
	// A waiver for a rule that did not run cannot be judged stale.
	if got := rep.StaleWaivers([]string{RuleErrDrop}); len(got) != 0 {
		t.Errorf("StaleWaivers restricted to err-drop = %v, want none", got)
	}
}

// TestRunWithParallelDeterministic pins the parallel driver's
// determinism: any worker count must yield the identical finding list,
// and the sequential Run wrapper must agree.
func TestRunWithParallelDeterministic(t *testing.T) {
	m := loadFixtures(t)
	rules := AllRules()
	sequential := Run(m, rules)
	for _, workers := range []int{2, 8, 64} {
		rep := NewReporter(m)
		timing := RunWith(rep, m, rules, workers)
		if got := rep.Findings(); !reflect.DeepEqual(got, sequential) {
			t.Errorf("workers=%d: findings diverge from sequential run\ngot  %v\nwant %v",
				workers, got, sequential)
		}
		for _, r := range rules {
			if _, ok := timing[r.Name()]; !ok {
				t.Errorf("workers=%d: no timing recorded for rule %s", workers, r.Name())
			}
		}
	}
}

// BenchmarkLintTree measures the full suite over the repository's own
// tree at several worker counts; the module load (dominated by the
// source importer) is excluded from the timed region.
func BenchmarkLintTree(b *testing.B) {
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		b.Fatalf("loading repository module: %v", err)
	}
	rules := AllRules()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := NewReporter(m)
				RunWith(rep, m, rules, workers)
			}
		})
	}
}
