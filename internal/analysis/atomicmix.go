package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicMixRule enforces the memory-model discipline behind the metrics
// hot path: once any code site accesses a variable or struct field
// through sync/atomic (atomic.AddInt64(&x, 1), atomic.LoadUint64(&f.n),
// ...), every other access must also be atomic. A plain load can
// observe a torn or stale value, and a plain store races with the
// atomic ones — the race detector only catches the interleavings a
// given test happens to produce, while this rule catches the pattern
// statically, module-wide. Typed atomics (atomic.Int64 and friends)
// make the mix inexpressible and are the repository's preferred form;
// the rule exists for the pointer-style call sites that remain.
type atomicMixRule struct{}

func (atomicMixRule) Name() string { return RuleAtomicMix }
func (atomicMixRule) Doc() string {
	return "variables accessed via sync/atomic must never be accessed plainly"
}

func (atomicMixRule) Check(m *Module, rep *Reporter) {
	atomicObjs := make(map[types.Object]bool)
	// exempt marks the &target operands inside sync/atomic calls so the
	// second pass does not flag the atomic accesses themselves.
	exempt := make(map[ast.Expr]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			collectAtomicTargets(pkg.Info, f, atomicObjs, exempt)
		}
	}
	if len(atomicObjs) == 0 {
		return
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			checkPlainAccess(pkg.Info, rep, f, atomicObjs, exempt)
		}
	}
}

// collectAtomicTargets records the object behind every &x passed to a
// sync/atomic function.
func collectAtomicTargets(info *types.Info, f *ast.File, objs map[types.Object]bool, exempt map[ast.Expr]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, _, ok := pkgFuncCall(info, call)
		if !ok || pkgPath != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, isAddr := arg.(*ast.UnaryExpr)
			if !isAddr || un.Op != token.AND {
				continue
			}
			if obj := exprObj(info, un.X); obj != nil {
				objs[obj] = true
				exempt[un.X] = true
			}
		}
		return true
	})
}

// checkPlainAccess reports every read or write of an atomic object that
// is not itself one of the collected atomic call operands.
func checkPlainAccess(info *types.Info, rep *Reporter, f *ast.File, objs map[types.Object]bool, exempt map[ast.Expr]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if exempt[e] {
			return false
		}
		switch e.(type) {
		case *ast.SelectorExpr, *ast.Ident:
		default:
			return true
		}
		obj := exprObj(info, e)
		if obj == nil || !objs[obj] {
			return true
		}
		rep.Report(e.Pos(), RuleAtomicMix,
			"%s is accessed atomically elsewhere; this plain access races with it", obj.Name())
		return false
	})
}
