package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcUnit is one unit of intraprocedural analysis: a declared
// function's body or a function literal's body. Literals are separate
// units because they execute on their own goroutine/schedule — flow
// state never crosses the literal boundary.
type funcUnit struct {
	name string
	decl *ast.FuncDecl // nil for literals
	body *ast.BlockStmt
}

// callerHolds reports whether the unit participates in the repo's
// "*Locked" naming convention: the caller already holds the guarding
// mutex, so the body runs with a lock held that it must not release.
func (u funcUnit) callerHolds() bool {
	return u.decl != nil && strings.HasSuffix(u.decl.Name.Name, "Locked")
}

// funcUnits enumerates a file's analysis units: every declared function
// with a body, then every function literal (wherever it is nested).
func funcUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			units = append(units, funcUnit{funcName(fd), fd, fd.Body})
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			units = append(units, funcUnit{"function literal", nil, fl.Body})
		}
		return true
	})
	return units
}

// walkLeaf visits the subtree of one CFG leaf node in source order,
// skipping function literals (they are separate units). fn returns
// whether to descend into the visited node's children.
func walkLeaf(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		return fn(x)
	})
}

// methodRecvType resolves a method-call selector's receiver type to
// its named type's package path and type name (pointers dereferenced).
// ok=false for non-method selections and unnamed receivers.
func methodRecvType(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	s, isSel := info.Selections[sel]
	if !isSel || s.Kind() != types.MethodVal {
		return "", "", false
	}
	t := s.Recv()
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// pkgPathInScope reports whether a package path denotes the project
// subtree, by exact or "/"-suffix match (mirrors Package.InScope for
// arbitrary import paths, so fixture modules match too).
func pkgPathInScope(path, subtree string) bool {
	return path == subtree || strings.HasSuffix(path, "/"+subtree)
}
