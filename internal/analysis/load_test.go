package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module from path→content pairs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestModulePath(t *testing.T) {
	for _, tc := range []struct {
		gomod string
		want  string
		ok    bool
	}{
		{"module example.com/m\n\ngo 1.21\n", "example.com/m", true},
		{"// comment\nmodule \"quoted.example/m\"\n", "quoted.example/m", true},
		{"go 1.21\n", "", false},
		{"modulex example.com/m\n", "", false},
	} {
		got, err := modulePath([]byte(tc.gomod))
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("modulePath(%q) = %q, %v; want %q", tc.gomod, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("modulePath(%q) succeeded with %q; want error", tc.gomod, got)
		}
	}
}

func TestLoadModuleErrors(t *testing.T) {
	t.Run("not-a-module", func(t *testing.T) {
		if _, err := LoadModule(t.TempDir()); err == nil {
			t.Error("loading a directory without go.mod succeeded")
		}
	})
	t.Run("no-packages", func(t *testing.T) {
		root := writeModule(t, map[string]string{"go.mod": "module empty.test\n"})
		if _, err := LoadModule(root); err == nil || !strings.Contains(err.Error(), "no Go packages") {
			t.Errorf("want no-packages error, got %v", err)
		}
	})
	t.Run("parse-error", func(t *testing.T) {
		root := writeModule(t, map[string]string{
			"go.mod":  "module broken.test\n",
			"main.go": "package main\nfunc {\n",
		})
		if _, err := LoadModule(root); err == nil {
			t.Error("syntactically broken module loaded")
		}
	})
	t.Run("conflicting-package-names", func(t *testing.T) {
		root := writeModule(t, map[string]string{
			"go.mod": "module conflict.test\n",
			"a.go":   "package one\n",
			"b.go":   "package two\n",
		})
		if _, err := LoadModule(root); err == nil || !strings.Contains(err.Error(), "conflicting package names") {
			t.Errorf("want conflicting-package-names error, got %v", err)
		}
	})
	t.Run("import-cycle", func(t *testing.T) {
		root := writeModule(t, map[string]string{
			"go.mod": "module cycle.test\n",
			"a/a.go": "package a\n\nimport _ \"cycle.test/b\"\n",
			"b/b.go": "package b\n\nimport _ \"cycle.test/a\"\n",
		})
		if _, err := LoadModule(root); err == nil || !strings.Contains(err.Error(), "import cycle") {
			t.Errorf("want import-cycle error, got %v", err)
		}
	})
	t.Run("type-error", func(t *testing.T) {
		root := writeModule(t, map[string]string{
			"go.mod":  "module typed.test\n",
			"main.go": "package main\n\nvar x int = \"not an int\"\n",
		})
		if _, err := LoadModule(root); err == nil || !strings.Contains(err.Error(), "type-checking") {
			t.Errorf("want type-checking error, got %v", err)
		}
	})
}

// TestLoadModuleSkipsNonSource verifies testdata, hidden, underscore
// and vendor trees as well as _test.go files stay out of the load.
func TestLoadModuleSkipsNonSource(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":               "module skip.test\n",
		"ok/ok.go":             "package ok\n",
		"ok/ok_test.go":        "package ok\n\nfunc init() { var broken }\n",
		"testdata/bad.go":      "this is not Go at all",
		"vendor/v/v.go":        "also not Go",
		".hidden/h.go":         "not Go either",
		"_attic/old.go":        "ancient non-Go",
		"ok/testdata/inner.go": "still not Go",
	})
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("skip dirs leaked into the load: %v", err)
	}
	if len(m.Pkgs) != 1 || m.Pkgs[0].Path != "skip.test/ok" {
		t.Errorf("loaded packages = %+v, want exactly skip.test/ok", m.Pkgs)
	}
}

// TestLoadModuleDependencyOrder checks intra-module imports are
// type-checked before their importers.
func TestLoadModuleDependencyOrder(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module order.test\n",
		"a/a.go": "package a\n\nimport \"order.test/b\"\n\nvar X = b.Y\n",
		"b/b.go": "package b\n\nvar Y = 7\n",
	})
	m, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range m.Pkgs {
		paths = append(paths, p.Path)
	}
	if len(paths) != 2 || paths[0] != "order.test/b" || paths[1] != "order.test/a" {
		t.Errorf("dependency order = %v, want [order.test/b order.test/a]", paths)
	}
	for _, p := range m.Pkgs {
		if p.Types == nil || p.Info == nil {
			t.Errorf("%s missing type information", p.Path)
		}
	}
}
