package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestRelFile(t *testing.T) {
	r := &Reporter{root: "/repo"}
	if got := r.relFile("/repo/internal/a.go"); got != "internal/a.go" {
		t.Errorf("relFile inside root = %q", got)
	}
	if got := r.relFile("/elsewhere/b.go"); got != "/elsewhere/b.go" {
		t.Errorf("relFile outside root = %q", got)
	}
}

func TestFindingsSortOrder(t *testing.T) {
	r := &Reporter{findings: []Finding{
		{Rule: "b", File: "z.go", Line: 1, Col: 1},
		{Rule: "a", File: "a.go", Line: 2, Col: 1},
		{Rule: "a", File: "a.go", Line: 1, Col: 9},
		{Rule: "a", File: "a.go", Line: 1, Col: 2},
		{Rule: "z", File: "a.go", Line: 1, Col: 2},
	}}
	got := r.Findings()
	want := []Finding{
		{Rule: "a", File: "a.go", Line: 1, Col: 2},
		{Rule: "z", File: "a.go", Line: 1, Col: 2},
		{Rule: "a", File: "a.go", Line: 1, Col: 9},
		{Rule: "a", File: "a.go", Line: 2, Col: 1},
		{Rule: "b", File: "z.go", Line: 1, Col: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Findings() order = %+v", got)
	}
}

func TestNilTypeHelpers(t *testing.T) {
	if isMapType(nil) {
		t.Error("isMapType(nil)")
	}
	if isStringType(nil) {
		t.Error("isStringType(nil)")
	}
	if isErrorType(nil) {
		t.Error("isErrorType(nil)")
	}
}

func TestPkgBase(t *testing.T) {
	for in, want := range map[string]string{
		"sort":                    "sort",
		"math/rand":               "rand",
		"golang.org/x/exp/slices": "slices",
	} {
		if got := pkgBase(in); got != want {
			t.Errorf("pkgBase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFuncName(t *testing.T) {
	src := `package p
func Plain() {}
func (t T) Value() {}
func (t *T) Pointer() {}
func ((T)) Odd() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Plain": true, "T.Value": true, "T.Pointer": true, "Odd": true}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if name := funcName(fd); !want[name] {
			t.Errorf("funcName rendered %q", name)
		}
	}
}
