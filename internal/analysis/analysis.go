// Package analysis implements imcf-lint: a project-native static
// analysis suite that machine-checks the repository's cross-cutting
// invariants — the allocation-free planner and metrics hot paths
// (//imcf:noalloc), replay determinism in the simulation packages,
// metrics-registry hygiene, discarded errors on the serving path, and
// mixed atomic/plain access to shared state.
//
// The framework is standard-library only: packages are parsed with
// go/parser and type-checked with go/types using the source importer,
// so the linter builds and runs wherever the repository does, with no
// dependency on golang.org/x/tools.
//
// Two comment directives steer the rules:
//
//	//imcf:noalloc              annotates a function whose body must
//	                            stay allocation-free (doc comment)
//	//imcf:allow <rule> <why>   waives every <rule> finding on the same
//	                            or the following line
//
// The err-drop rule additionally honors the repository's pre-existing
// //nolint:errcheck convention.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rule names, as used by waiver comments, enable flags and baselines.
const (
	RuleNoalloc         = "noalloc"
	RuleDeterminism     = "determinism"
	RuleMetricsHygiene  = "metrics-hygiene"
	RuleErrDrop         = "err-drop"
	RuleAtomicMix       = "atomic-mix"
	RuleLockDiscipline  = "lockdiscipline"
	RuleTenantIsolation = "tenantisolation"
	RuleOSBypass        = "osbypass"
	RuleGoLeak          = "goleak"
	RuleLogHygiene      = "loghygiene"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule string `json:"rule"`
	// File is the module-relative, slash-separated file path.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Rule is one check of the suite. Rules inspect the whole module so
// cross-package rules (metrics-hygiene, atomic-mix) fit the same shape
// as per-function ones.
type Rule interface {
	// Name is the rule's identifier ("noalloc").
	Name() string
	// Doc is a one-line description shown by the driver.
	Doc() string
	// Check inspects the module and reports findings.
	Check(m *Module, rep *Reporter)
}

// AllRules returns the full suite in its canonical order.
func AllRules() []Rule {
	return []Rule{
		noallocRule{},
		determinismRule{},
		metricsHygieneRule{},
		errDropRule{},
		atomicMixRule{},
		lockDisciplineRule{},
		tenantIsolationRule{},
		osBypassRule{},
		goLeakRule{},
		logHygieneRule{},
	}
}

// packageRule is implemented by rules whose work decomposes per
// package; RunWith fans those (rule, package) units over the worker
// pool instead of running the rule as one unit.
type packageRule interface {
	Rule
	CheckPackage(m *Module, pkg *Package, rep *Reporter)
}

// checkEachPackage is the sequential Check implementation shared by
// packageRule implementations.
func checkEachPackage(r packageRule, m *Module, rep *Reporter) {
	for _, pkg := range m.Pkgs {
		r.CheckPackage(m, pkg, rep)
	}
}

// waiverEntry is one waiver comment in the tree. used flips when the
// entry suppresses a finding, so StaleWaivers can report directives
// that outlived the code they excuse.
type waiverEntry struct {
	file string
	line int // line of the comment itself
	rule string
	// directive marks //imcf:allow comments; //nolint:errcheck is a
	// pre-existing convention outside the staleness contract.
	directive bool
	used      bool
}

// Waiver identifies one stale //imcf:allow directive.
type Waiver struct {
	File string
	Line int
	Rule string
}

// String renders the stale waiver in file:line form.
func (w Waiver) String() string {
	return fmt.Sprintf("%s:%d: //imcf:allow %s", w.File, w.Line, w.Rule)
}

// Reporter collects findings and applies waiver directives. It is safe
// for concurrent use by RunWith's worker pool.
type Reporter struct {
	fset *token.FileSet
	root string
	// waived maps file → line → rule → the covering waiver entry. A
	// comment at line L is indexed at L and covers findings at L and
	// L+1 (Waived checks line and line-1).
	waived   map[string]map[int]map[string]*waiverEntry
	mu       sync.Mutex
	findings []Finding
}

// NewReporter builds a reporter for the module, indexing every waiver
// comment (//imcf:allow and //nolint:errcheck) up front.
func NewReporter(m *Module) *Reporter {
	r := &Reporter{
		fset:   m.Fset,
		root:   m.Root,
		waived: make(map[string]map[int]map[string]*waiverEntry),
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			r.indexWaivers(f)
		}
	}
	return r
}

// indexWaivers records the waiver directives of one file.
func (r *Reporter) indexWaivers(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			var rule string
			directive := false
			switch {
			case strings.HasPrefix(text, "imcf:allow"):
				fields := strings.Fields(strings.TrimPrefix(text, "imcf:allow"))
				if len(fields) == 0 {
					continue
				}
				rule = fields[0]
				directive = true
			case strings.HasPrefix(text, "nolint") && strings.Contains(text, "errcheck"):
				rule = RuleErrDrop
			default:
				continue
			}
			pos := r.fset.Position(c.Pos())
			file := r.relFile(pos.Filename)
			if r.waived[file] == nil {
				r.waived[file] = make(map[int]map[string]*waiverEntry)
			}
			if r.waived[file][pos.Line] == nil {
				r.waived[file][pos.Line] = make(map[string]*waiverEntry)
			}
			if r.waived[file][pos.Line][rule] == nil {
				r.waived[file][pos.Line][rule] = &waiverEntry{
					file: file, line: pos.Line, rule: rule, directive: directive,
				}
			}
		}
	}
}

// relFile converts an absolute file name to the module-relative form
// used in findings and baselines.
func (r *Reporter) relFile(filename string) string {
	if rel, err := filepath.Rel(r.root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Waived reports whether the rule is waived at the file's line: by a
// trailing directive on the line itself or a directive on the line
// directly above. A match marks the waiver used for StaleWaivers.
func (r *Reporter) Waived(rule, file string, line int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.waivedLocked(rule, file, line)
}

func (r *Reporter) waivedLocked(rule, file string, line int) bool {
	byLine := r.waived[file]
	for _, l := range [2]int{line, line - 1} {
		if e := byLine[l][rule]; e != nil {
			e.used = true
			return true
		}
	}
	return false
}

// Report records a finding at pos unless a waiver covers it.
func (r *Reporter) Report(pos token.Pos, rule, format string, args ...any) {
	p := r.fset.Position(pos)
	file := r.relFile(p.Filename)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.waivedLocked(rule, file, p.Line) {
		return
	}
	r.findings = append(r.findings, Finding{
		Rule:    rule,
		File:    file,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// StaleWaivers returns the //imcf:allow directives that suppressed
// nothing, restricted to rules in the given set — a waiver for a rule
// that did not run cannot be judged stale. Results are sorted by file,
// line and rule. //nolint comments are outside the staleness contract.
func (r *Reporter) StaleWaivers(rulesRun []string) []Waiver {
	ran := make(map[string]bool, len(rulesRun))
	for _, name := range rulesRun {
		ran[name] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Waiver
	for _, byLine := range r.waived {
		for _, byRule := range byLine {
			for _, e := range byRule {
				if e.directive && !e.used && ran[e.rule] {
					out = append(out, Waiver{File: e.file, Line: e.line, Rule: e.rule})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// Findings returns the collected findings sorted by file, line, column
// and rule. The sort makes the output order deterministic regardless
// of how many workers produced the findings.
func (r *Reporter) Findings() []Finding {
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i], r.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return r.findings
}

// Run executes the given rules over the module sequentially and
// returns the sorted findings.
func Run(m *Module, rules []Rule) []Finding {
	rep := NewReporter(m)
	RunWith(rep, m, rules, 1)
	return rep.Findings()
}

// lintUnit is one schedulable piece of work for the pool.
type lintUnit struct {
	rule string
	run  func(*Reporter)
}

// RunWith executes the rules over the module on a bounded pool of
// workers, reporting into rep. Package-decomposable rules fan out one
// unit per (rule, package); module-wide rules run as a single unit.
// Finding order is deterministic because the Reporter sorts, and the
// rules themselves only append through the locked Reporter. The
// returned map holds per-rule CPU-time totals (summed across workers,
// so a rule's figure can exceed wall time).
func RunWith(rep *Reporter, m *Module, rules []Rule, workers int) map[string]time.Duration {
	var units []lintUnit
	for _, rule := range rules {
		if pr, ok := rule.(packageRule); ok {
			for _, pkg := range m.Pkgs {
				pkg := pkg
				units = append(units, lintUnit{pr.Name(), func(rep *Reporter) {
					pr.CheckPackage(m, pkg, rep)
				}})
			}
			continue
		}
		rule := rule
		units = append(units, lintUnit{rule.Name(), func(rep *Reporter) {
			rule.Check(m, rep)
		}})
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(units) {
		workers = len(units)
	}
	var (
		timingMu sync.Mutex
		timing   = make(map[string]time.Duration, len(rules))
		next     atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				u := units[i]
				start := time.Now()
				u.run(rep)
				d := time.Since(start)
				timingMu.Lock()
				timing[u.rule] += d
				timingMu.Unlock()
			}
		}()
	}
	wg.Wait()
	return timing
}

// noallocAnnotated reports whether the function declaration carries the
// //imcf:noalloc contract in its doc comment.
func noallocAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "imcf:noalloc" || strings.HasPrefix(text, "imcf:noalloc ") {
			return true
		}
	}
	return false
}

// funcName renders a declaration's name, with the receiver type for
// methods ("Planner.hillClimb").
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
