// Package analysis implements imcf-lint: a project-native static
// analysis suite that machine-checks the repository's cross-cutting
// invariants — the allocation-free planner and metrics hot paths
// (//imcf:noalloc), replay determinism in the simulation packages,
// metrics-registry hygiene, discarded errors on the serving path, and
// mixed atomic/plain access to shared state.
//
// The framework is standard-library only: packages are parsed with
// go/parser and type-checked with go/types using the source importer,
// so the linter builds and runs wherever the repository does, with no
// dependency on golang.org/x/tools.
//
// Two comment directives steer the rules:
//
//	//imcf:noalloc              annotates a function whose body must
//	                            stay allocation-free (doc comment)
//	//imcf:allow <rule> <why>   waives every <rule> finding on the same
//	                            or the following line
//
// The err-drop rule additionally honors the repository's pre-existing
// //nolint:errcheck convention.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Rule names, as used by waiver comments, enable flags and baselines.
const (
	RuleNoalloc        = "noalloc"
	RuleDeterminism    = "determinism"
	RuleMetricsHygiene = "metrics-hygiene"
	RuleErrDrop        = "err-drop"
	RuleAtomicMix      = "atomic-mix"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule string `json:"rule"`
	// File is the module-relative, slash-separated file path.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Rule is one check of the suite. Rules inspect the whole module so
// cross-package rules (metrics-hygiene, atomic-mix) fit the same shape
// as per-function ones.
type Rule interface {
	// Name is the rule's identifier ("noalloc").
	Name() string
	// Doc is a one-line description shown by the driver.
	Doc() string
	// Check inspects the module and reports findings.
	Check(m *Module, rep *Reporter)
}

// AllRules returns the full suite in its canonical order.
func AllRules() []Rule {
	return []Rule{
		noallocRule{},
		determinismRule{},
		metricsHygieneRule{},
		errDropRule{},
		atomicMixRule{},
	}
}

// Reporter collects findings and applies waiver directives.
type Reporter struct {
	fset *token.FileSet
	root string
	// waived maps file → line → rule names waived on that line.
	waived   map[string]map[int]map[string]bool
	findings []Finding
}

// NewReporter builds a reporter for the module, indexing every waiver
// comment (//imcf:allow and //nolint:errcheck) up front.
func NewReporter(m *Module) *Reporter {
	r := &Reporter{
		fset:   m.Fset,
		root:   m.Root,
		waived: make(map[string]map[int]map[string]bool),
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			r.indexWaivers(f)
		}
	}
	return r
}

// indexWaivers records the waiver directives of one file.
func (r *Reporter) indexWaivers(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			var rule string
			switch {
			case strings.HasPrefix(text, "imcf:allow"):
				fields := strings.Fields(strings.TrimPrefix(text, "imcf:allow"))
				if len(fields) == 0 {
					continue
				}
				rule = fields[0]
			case strings.HasPrefix(text, "nolint") && strings.Contains(text, "errcheck"):
				rule = RuleErrDrop
			default:
				continue
			}
			pos := r.fset.Position(c.Pos())
			file := r.relFile(pos.Filename)
			if r.waived[file] == nil {
				r.waived[file] = make(map[int]map[string]bool)
			}
			if r.waived[file][pos.Line] == nil {
				r.waived[file][pos.Line] = make(map[string]bool)
			}
			r.waived[file][pos.Line][rule] = true
		}
	}
}

// relFile converts an absolute file name to the module-relative form
// used in findings and baselines.
func (r *Reporter) relFile(filename string) string {
	if rel, err := filepath.Rel(r.root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Waived reports whether the rule is waived at the file's line: by a
// trailing directive on the line itself or a directive on the line
// directly above.
func (r *Reporter) Waived(rule, file string, line int) bool {
	byLine := r.waived[file]
	return byLine[line][rule] || byLine[line-1][rule]
}

// Report records a finding at pos unless a waiver covers it.
func (r *Reporter) Report(pos token.Pos, rule, format string, args ...any) {
	p := r.fset.Position(pos)
	file := r.relFile(p.Filename)
	if r.Waived(rule, file, p.Line) {
		return
	}
	r.findings = append(r.findings, Finding{
		Rule:    rule,
		File:    file,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Findings returns the collected findings sorted by file, line, column
// and rule.
func (r *Reporter) Findings() []Finding {
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i], r.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return r.findings
}

// Run executes the given rules over the module and returns the sorted
// findings.
func Run(m *Module, rules []Rule) []Finding {
	rep := NewReporter(m)
	for _, rule := range rules {
		rule.Check(m, rep)
	}
	return rep.Findings()
}

// noallocAnnotated reports whether the function declaration carries the
// //imcf:noalloc contract in its doc comment.
func noallocAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "imcf:noalloc" || strings.HasPrefix(text, "imcf:noalloc ") {
			return true
		}
	}
	return false
}

// funcName renders a declaration's name, with the receiver type for
// methods ("Planner.hillClimb").
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
