package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseBody parses `func f() { <src> }` and returns the body with its
// fileset.
func parseBody(t *testing.T, src string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", "package p\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return fset, file.Decls[len(file.Decls)-1].(*ast.FuncDecl).Body
}

// renderCFG prints the graph compactly, one reachable block per line:
//
//	b0[<node kinds>] -> b2 b3
//
// Node kinds are the ast type names with the "ast." prefix and "Stmt"/
// "Expr" suffixes stripped, so expectations read naturally.
func renderCFG(c *CFG) string {
	reach := c.Reachable()
	var sb strings.Builder
	for i, blk := range c.Blocks {
		if !reach[i] {
			continue
		}
		kinds := make([]string, len(blk.Nodes))
		for j, n := range blk.Nodes {
			name := fmt.Sprintf("%T", n)
			name = strings.TrimPrefix(name, "*ast.")
			name = strings.TrimSuffix(name, "Stmt")
			kinds[j] = name
		}
		succs := append([]int(nil), blk.Succs...)
		sort.Ints(succs)
		var ss []string
		for _, s := range succs {
			if reach[s] {
				ss = append(ss, fmt.Sprintf("b%d", s))
			}
		}
		fmt.Fprintf(&sb, "b%d[%s] -> %s\n", i, strings.Join(kinds, " "), strings.Join(ss, " "))
	}
	return sb.String()
}

// TestBuildCFGShapes pins the block/edge structure per control
// construct. Block b1 is always the synthetic exit.
func TestBuildCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "straightline",
			src:  "x := 1\nx++",
			want: "b0[Assign IncDec] -> b1\nb1[] -> \n",
		},
		{
			name: "if",
			src:  "x := 1\nif x > 0 {\n x--\n}\nx++",
			// cond block -> then(b2) and after(b3); then -> after.
			want: "b0[Assign BinaryExpr] -> b2 b3\nb1[] -> \nb2[IncDec] -> b3\nb3[IncDec] -> b1\n",
		},
		{
			name: "if-else",
			src:  "x := 1\nif x > 0 {\n x--\n} else {\n x++\n}",
			want: "b0[Assign BinaryExpr] -> b2 b4\nb1[] -> \nb2[IncDec] -> b3\nb3[] -> b1\nb4[IncDec] -> b3\n",
		},
		{
			name: "if-init",
			src:  "if x := 1; x > 0 {\n x--\n}",
			want: "b0[Assign BinaryExpr] -> b2 b3\nb1[] -> \nb2[IncDec] -> b3\nb3[] -> b1\n",
		},
		{
			name: "for-cond-post",
			src:  "for i := 0; i < 3; i++ {\n _ = i\n}",
			// init(b0) -> head(b2); head -> after(b3) | body(b5);
			// body -> post(b4) -> head.
			want: "b0[Assign] -> b2\nb1[] -> \nb2[BinaryExpr] -> b3 b5\nb3[] -> b1\nb4[IncDec] -> b2\nb5[Assign] -> b4\n",
		},
		{
			name: "for-infinite",
			src:  "for {\n _ = 1\n}",
			// No cond: after-block b3 is unreachable, exit too.
			want: "b0[] -> b2\nb2[] -> b4\nb4[Assign] -> b2\n",
		},
		{
			name: "for-break",
			src:  "for {\n break\n}\n_ = 1",
			// No condition, so the break edge is the loop's only exit:
			// head(b2) -> body(b4) -> after(b3).
			want: "b0[] -> b2\nb1[] -> \nb2[] -> b4\nb3[Assign] -> b1\nb4[] -> b3\n",
		},
		{
			name: "range",
			src:  "s := []int{1}\nfor _, v := range s {\n _ = v\n}",
			// head(b2) evaluates s; -> after(b3) | body(b4); body -> head.
			want: "b0[Assign] -> b2\nb1[] -> \nb2[Ident] -> b3 b4\nb3[] -> b1\nb4[Assign] -> b2\n",
		},
		{
			name: "switch-fallthrough-default",
			src:  "x := 1\nswitch x {\ncase 1:\n x--\n fallthrough\ncase 2:\n x++\ndefault:\n x = 0\n}",
			// head -> each clause; clause 1 ends in fallthrough so it
			// transfers to clause 2 unconditionally (no edge to after);
			// default present so head has no edge to after either.
			want: "b0[Assign Ident] -> b3 b4 b5\nb1[] -> \nb2[] -> b1\nb3[BasicLit IncDec] -> b4\nb4[BasicLit IncDec] -> b2\nb5[Assign] -> b2\n",
		},
		{
			name: "typeswitch",
			src:  "var v any = 1\nswitch v.(type) {\ncase int:\n _ = 1\n}",
			// The bare guard is an ExprStmt; no default, so head also
			// edges to after(b2).
			want: "b0[Decl Expr] -> b2 b3\nb1[] -> \nb2[] -> b1\nb3[Ident Assign] -> b2\n",
		},
		{
			name: "select",
			src:  "ch := make(chan int)\nselect {\ncase v := <-ch:\n _ = v\ndefault:\n}",
			want: "b0[Assign] -> b3 b4\nb1[] -> \nb2[] -> b1\nb3[Assign Assign] -> b2\nb4[] -> b2\n",
		},
		{
			name: "early-return",
			src:  "x := 1\nif x > 0 {\n return\n}\nx++",
			// The return edges to exit; the block after it is dead.
			want: "b0[Assign BinaryExpr] -> b2 b4\nb1[] -> \nb2[Return] -> b1\nb4[IncDec] -> b1\n",
		},
		{
			name: "labeled-continue",
			src:  "outer:\nfor i := 0; i < 2; i++ {\n for {\n  continue outer\n }\n}",
			want: "b0[] -> b2\nb1[] -> \nb2[Assign] -> b3\nb3[BinaryExpr] -> b4 b6\nb4[] -> b1\nb5[IncDec] -> b3\nb6[] -> b7\nb7[] -> b9\nb9[] -> b5\n",
		},
		{
			name: "goto",
			src:  "x := 1\nagain:\nx++\nif x < 3 {\n goto again\n}",
			// The goto resolves to the labeled block b2; b4 is the dead
			// block allocated after the jump, so "after" lands at b5.
			want: "b0[Assign] -> b2\nb1[] -> \nb2[IncDec BinaryExpr] -> b3 b5\nb3[] -> b2\nb5[] -> b1\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, body := parseBody(t, tc.src)
			got := renderCFG(BuildCFG(body))
			if got != tc.want {
				t.Errorf("CFG diverges:\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestBuildCFGFallsThrough pins the implicit-return bookkeeping: the
// falls-through block must be reachable and feed the exit exactly when
// control can run off the closing brace.
func TestBuildCFGFallsThrough(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		reachable bool
	}{
		{"plain", "x := 1\n_ = x", true},
		{"terminated", "return", false},
		{"infinite-loop", "for {\n}", false},
		{"branchy", "x := 1\nif x > 0 {\n return\n}", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, body := parseBody(t, tc.src)
			c := BuildCFG(body)
			if c.FallsThrough < 0 {
				t.Fatal("FallsThrough must always record the end-of-body block")
			}
			reach := c.Reachable()
			if got := reach[c.FallsThrough]; got != tc.reachable {
				t.Errorf("falls-through reachable = %v, want %v", got, tc.reachable)
			}
			found := false
			for _, s := range c.Blocks[c.FallsThrough].Succs {
				if s == c.Exit {
					found = true
				}
			}
			if !found {
				t.Error("falls-through block must edge to the exit")
			}
		})
	}
}

// referenceLeaves walks a body the way the builder is specified to:
// every statement that is not a composite control construct (and not
// inside a function literal) is a leaf the CFG must place. Branch and
// labeled statements lower to edges/blocks, not nodes.
func referenceLeaves(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch s.(type) {
		case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
			*ast.CaseClause, *ast.CommClause, *ast.LabeledStmt, *ast.BranchStmt:
			return true
		}
		out = append(out, s)
		return true
	})
	return out
}

// cfgProperties asserts the structural invariants every CFG must hold:
// each leaf statement is placed in exactly one block, successors are
// in range, the exit block is empty and terminal, and every reachable
// block either reaches the exit or sits on a cycle (an infinite loop).
func cfgProperties(t *testing.T, label string, body *ast.BlockStmt) {
	t.Helper()
	c := BuildCFG(body)
	placed := make(map[ast.Node]int)
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			placed[n]++
			if placed[n] > 1 {
				t.Errorf("%s: node %T placed in more than one block", label, n)
			}
		}
		for _, s := range blk.Succs {
			if s < 0 || s >= len(c.Blocks) {
				t.Fatalf("%s: successor %d out of range", label, s)
			}
		}
	}
	for _, leaf := range referenceLeaves(body) {
		if placed[leaf] != 1 {
			t.Errorf("%s: leaf %T placed %d times, want exactly once", label, leaf, placed[leaf])
		}
	}
	exit := c.Blocks[c.Exit]
	if len(exit.Nodes) != 0 || len(exit.Succs) != 0 {
		t.Errorf("%s: exit block must be empty and terminal", label)
	}
	// Reverse-reachability from exit; blocks that cannot reach the exit
	// must be on (or lead to) a cycle — they always have a successor.
	reachesExit := make([]bool, len(c.Blocks))
	reachesExit[c.Exit] = true
	for changed := true; changed; {
		changed = false
		for i, blk := range c.Blocks {
			if reachesExit[i] {
				continue
			}
			for _, s := range blk.Succs {
				if reachesExit[s] {
					reachesExit[i] = true
					changed = true
					break
				}
			}
		}
	}
	for i, ok := range c.Reachable() {
		if !ok || reachesExit[i] {
			continue
		}
		if len(c.Blocks[i].Succs) == 0 {
			t.Errorf("%s: reachable block b%d neither reaches exit nor continues a cycle", label, i)
		}
	}
}

// TestCFGProperties runs the structural invariants over every function
// and literal in the fixture module — the same corpus the rules
// analyze, including the infinite-loop goroutine fixtures.
func TestCFGProperties(t *testing.T) {
	m := loadFixtures(t)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, u := range funcUnits(f) {
				pos := m.Fset.Position(u.body.Pos())
				cfgProperties(t, fmt.Sprintf("%s:%d %s", pos.Filename, pos.Line, u.name), u.body)
			}
		}
	}
}
