package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.baseline"))
	if err != nil {
		t.Fatalf("missing baseline must be empty, not an error: %v", err)
	}
	in := []Finding{{Rule: "noalloc", File: "a.go", Message: "m"}}
	if got := b.Filter(in); !reflect.DeepEqual(got, in) {
		t.Errorf("empty baseline filtered findings: %v", got)
	}
	if stale := b.Stale(t.TempDir()); len(stale) != 0 {
		t.Errorf("empty baseline reported stale entries: %v", stale)
	}
}

func TestLoadBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, []byte("only-one-field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("want malformed-entry error, got %v", err)
	}
}

func TestBaselineFilterCounts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint.baseline")
	content := "# header comment\n\n" +
		"err-drop\tpkg/f.go\terror returned by f.Close is discarded\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	same := Finding{Rule: "err-drop", File: "pkg/f.go", Line: 10, Message: "error returned by f.Close is discarded"}
	dup := same
	dup.Line = 20
	other := Finding{Rule: "noalloc", File: "pkg/f.go", Message: "closure allocates its environment"}
	got := b.Filter([]Finding{same, dup, other})
	// One baseline line suppresses exactly one finding: the duplicate at
	// line 20 and the unrelated rule survive.
	if len(got) != 2 || got[0] != dup || got[1] != other {
		t.Errorf("Filter = %+v, want [dup other]", got)
	}
}

func TestBaselineStale(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "pkg"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "pkg", "live.go"), []byte("package pkg\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "lint.baseline")
	content := "noalloc\tpkg/live.go\tm1\n" +
		"noalloc\tpkg/gone.go\tm2\n" +
		"err-drop\tpkg/gone.go\tm3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Stale(root); !reflect.DeepEqual(got, []string{"pkg/gone.go"}) {
		t.Errorf("Stale = %v, want [pkg/gone.go]", got)
	}
}

func TestFormatBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Rule: "noalloc", File: "b.go", Line: 2, Message: "late"},
		{Rule: "atomic-mix", File: "a.go", Line: 9, Message: "early"},
	}
	text := FormatBaseline(findings)
	if !strings.HasPrefix(text, "#") {
		t.Error("formatted baseline lacks the header comment")
	}
	// Entries are sorted independent of input order.
	iA := strings.Index(text, "atomic-mix\ta.go\tearly")
	iB := strings.Index(text, "noalloc\tb.go\tlate")
	if iA < 0 || iB < 0 || iA > iB {
		t.Errorf("formatted baseline wrong or unsorted:\n%s", text)
	}
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("formatted baseline does not re-parse: %v", err)
	}
	if got := b.Filter(findings); len(got) != 0 {
		t.Errorf("round-tripped baseline failed to suppress its own findings: %v", got)
	}
}
