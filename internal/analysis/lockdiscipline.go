package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockPackages are the subtrees whose mutex usage the rule audits: the
// storage engine and its persistence/journal satellites, the serving
// daemon/controller, the fleet scheduler, the cloud relay and the
// firewall. These are the packages where a mutex held across blocking
// I/O stalls every concurrent writer — the precise failure mode the
// group-commit engine exists to avoid.
var lockPackages = []string{
	"internal/store",
	"internal/persistence",
	"internal/daemon",
	"internal/controller",
	"internal/fleet",
	"internal/cloud",
	"internal/journal",
	"internal/firewall",
}

// lockDisciplineRule is the flow-sensitive mutex audit. Per function it
// runs a may-analysis of held lock keys over the CFG and reports three
// shapes:
//
//   - a blocking operation (fsync, file/socket I/O, HTTP, channel
//     send/receive, WaitGroup/Cond wait, time.Sleep) reachable with a
//     mutex held on some path;
//   - a return (or the closing brace) reachable with a
//     function-acquired lock held and no deferred unlock;
//   - a second Lock of a key that may already be held (self-deadlock).
//
// Functions named "*Locked" follow the repo convention that the caller
// holds the guarding mutex: they are seeded with a synthetic held lock
// (so blocking I/O inside them is still flagged) but are exempt from
// the unlock-before-return check. The group-commit leader is the one
// audited place allowed to hold db.mu across its batch fsync; it
// carries //imcf:allow waivers explaining why.
type lockDisciplineRule struct{}

func (lockDisciplineRule) Name() string { return RuleLockDiscipline }
func (lockDisciplineRule) Doc() string {
	return "no mutex held across blocking I/O, no early return with a lock held, no double-lock (serving + storage packages)"
}

func (r lockDisciplineRule) Check(m *Module, rep *Reporter) { checkEachPackage(r, m, rep) }

func (lockDisciplineRule) CheckPackage(m *Module, pkg *Package, rep *Reporter) {
	if !inAnyScope(pkg, lockPackages) {
		return
	}
	for _, f := range pkg.Files {
		for _, u := range funcUnits(f) {
			checkLockFunc(pkg.Info, rep, u)
		}
	}
}

// callerHeldKey is the synthetic lock seeded into "*Locked" functions.
const callerHeldKey = "w:<caller>"

// lockState is the per-block dataflow fact: the set of lock keys that
// may be held, and the set with a deferred unlock registered. Keys are
// mode-qualified receiver expressions ("w:db.mu", "r:db.mu") so read
// and write holds of an RWMutex are tracked independently.
type lockState struct {
	held     map[string]bool
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: make(map[string]bool), deferred: make(map[string]bool)}
}

func cloneLockState(s *lockState) *lockState {
	c := newLockState()
	for k := range s.held {
		c.held[k] = true
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// mergeLockState unions src into dst (may-analysis join).
func mergeLockState(dst, src *lockState) bool {
	changed := false
	for k := range src.held {
		if !dst.held[k] {
			dst.held[k] = true
			changed = true
		}
	}
	for k := range src.deferred {
		if !dst.deferred[k] {
			dst.deferred[k] = true
			changed = true
		}
	}
	return changed
}

// lockDisplay renders a lock key for messages.
func lockDisplay(key string) string {
	if key == callerHeldKey {
		return "the caller-held lock (*Locked convention)"
	}
	mode, expr, _ := strings.Cut(key, ":")
	if mode == "r" {
		return expr + " (read-locked)"
	}
	return expr
}

func sortedHeld(s *lockState) []string {
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func checkLockFunc(info *types.Info, rep *Reporter, u funcUnit) {
	cfg := BuildCFG(u.body)
	entry := newLockState()
	if u.callerHolds() {
		entry.held[callerHeldKey] = true
	}
	transfer := func(b *Block, s *lockState) *lockState {
		return transferLock(info, b, s, nil)
	}
	ins := forwardFlow(cfg, entry, cloneLockState, mergeLockState, transfer)
	reach := cfg.Reachable()
	for i, blk := range cfg.Blocks {
		if !reach[i] || ins[i] == nil {
			continue
		}
		transferLock(info, blk, cloneLockState(ins[i]), rep)
	}
	// Implicit return at the closing brace: a function-acquired lock
	// still held there leaks on the fall-off path.
	if ft := cfg.FallsThrough; ft >= 0 && reach[ft] && ins[ft] != nil {
		out := transferLock(info, cfg.Blocks[ft], cloneLockState(ins[ft]), nil)
		reportLeakedLocks(rep, u.body.Rbrace, out)
	}
}

// transferLock folds one block over the lock state; with rep non-nil it
// additionally reports violations (the post-fixpoint reporting pass).
func transferLock(info *types.Info, b *Block, s *lockState, rep *Reporter) *lockState {
	for _, n := range b.Nodes {
		if d, isDefer := n.(*ast.DeferStmt); isDefer {
			registerDeferredUnlocks(info, d, s)
			continue
		}
		walkLeaf(n, func(x ast.Node) bool {
			if rep != nil && len(s.held) > 0 {
				if what, blocking := blockingOp(info, x); blocking {
					for _, k := range sortedHeld(s) {
						rep.Report(x.Pos(), RuleLockDiscipline,
							"%s held across %s", lockDisplay(k), what)
					}
				}
			}
			if call, isCall := x.(*ast.CallExpr); isCall {
				applyLockOp(info, call, s, rep)
			}
			if ret, isRet := x.(*ast.ReturnStmt); isRet && rep != nil {
				reportLeakedLocks(rep, ret.Pos(), s)
			}
			return true
		})
	}
	return s
}

// registerDeferredUnlocks records deferred Unlock/RUnlock calls — both
// the direct `defer mu.Unlock()` form and unlocks inside a deferred
// function literal.
func registerDeferredUnlocks(info *types.Info, d *ast.DeferStmt, s *lockState) {
	record := func(call *ast.CallExpr) {
		if key, locks, _ := lockOpKey(info, call); key != "" && !locks {
			s.deferred[key] = true
		}
	}
	record(d.Call)
	if lit, isLit := d.Call.Fun.(*ast.FuncLit); isLit {
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if call, isCall := x.(*ast.CallExpr); isCall {
				record(call)
			}
			return true
		})
	}
}

// applyLockOp mutates the state for one call; with rep non-nil it also
// reports double-locks.
func applyLockOp(info *types.Info, call *ast.CallExpr, s *lockState, rep *Reporter) {
	key, locks, try := lockOpKey(info, call)
	if key == "" {
		return
	}
	if locks {
		if rep != nil && s.held[key] && !try {
			rep.Report(call.Pos(), RuleLockDiscipline,
				"%s locked again while possibly already held (self-deadlock)", lockDisplay(key))
		}
		s.held[key] = true
		return
	}
	delete(s.held, key)
}

// lockOpKey classifies a call as a mutex operation: it returns the
// mode-qualified lock key ("" for non-lock calls), whether the call
// acquires (vs releases), and whether it is a Try variant.
func lockOpKey(info *types.Info, call *ast.CallExpr) (key string, locks, try bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var mode string
	switch sel.Sel.Name {
	case "Lock", "TryLock", "Unlock":
		mode = "w"
	case "RLock", "TryRLock", "RUnlock":
		mode = "r"
	default:
		return "", false, false
	}
	pkgPath, typeName, ok := methodRecvType(info, sel)
	if !ok || pkgPath != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
		return "", false, false
	}
	name := sel.Sel.Name
	return mode + ":" + types.ExprString(sel.X),
		name != "Unlock" && name != "RUnlock",
		strings.HasPrefix(name, "Try")
}

// reportLeakedLocks flags locks held at a return site with no deferred
// unlock registered on the path. The synthetic caller-held lock is the
// caller's to release.
func reportLeakedLocks(rep *Reporter, pos token.Pos, s *lockState) {
	for _, k := range sortedHeld(s) {
		if k == callerHeldKey || s.deferred[k] {
			continue
		}
		rep.Report(pos, RuleLockDiscipline,
			"return reachable with %s still held and no deferred unlock", lockDisplay(k))
	}
}

// blockingMethodRecvPkgs are the packages whose Read/Write-shaped
// methods denote real file or socket I/O.
func blockingRecvPkg(pkgPath string) bool {
	return pkgPath == "os" || pkgPath == "net" || pkgPath == "net/http" ||
		pkgPathInScope(pkgPath, "internal/faultfs")
}

// blockingOp classifies a node as an operation that can block or touch
// durable media: fsyncs, file/socket I/O, HTTP round-trips, channel
// operations, WaitGroup/Cond waits and sleeps.
func blockingOp(info *types.Info, n ast.Node) (string, bool) {
	switch x := n.(type) {
	case *ast.SendStmt:
		return "a channel send", true
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return "a channel receive", true
		}
	case *ast.CallExpr:
		if pkgPath, fn, ok := pkgFuncCall(info, x); ok {
			if pkgPath == "time" && fn == "Sleep" {
				return "time.Sleep", true
			}
			if pkgPath == "net/http" {
				return "the HTTP call http." + fn, true
			}
			return "", false
		}
		sel, isSel := x.Fun.(*ast.SelectorExpr)
		if !isSel {
			return "", false
		}
		name := sel.Sel.Name
		switch name {
		case "Sync", "SyncDir":
			return types.ExprString(sel) + " (fsync)", true
		}
		pkgPath, typeName, ok := methodRecvType(info, sel)
		if !ok {
			return "", false
		}
		if name == "Wait" && pkgPath == "sync" && (typeName == "WaitGroup" || typeName == "Cond") {
			return "sync." + typeName + ".Wait", true
		}
		switch name {
		case "Read", "ReadAt", "ReadFrom", "Write", "WriteAt", "WriteTo", "WriteString", "Do":
			if blockingRecvPkg(pkgPath) {
				return types.ExprString(sel) + " (blocking I/O)", true
			}
		}
	}
	return "", false
}
