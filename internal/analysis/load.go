package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package directory, absolute.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
}

// Module is a fully loaded and type-checked Go module.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file in every package.
	Fset *token.FileSet
	// Pkgs lists the module's packages in dependency order.
	Pkgs []*Package
}

// Lookup returns the module package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package {
	for _, p := range m.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod []byte) (string, error) {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
				continue // identifier merely starts with "module"
			}
			p := strings.TrimSpace(rest)
			if p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in go.mod")
}

// skipDir reports whether a directory is outside the analyzed module
// source: testdata trees, VCS metadata, vendored or hidden directories.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// sourceFile reports whether name is a non-test Go source file.
func sourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root, using only the standard library: go/parser for
// syntax and go/types with the source importer for the standard
// library's type information. Test files and testdata trees are not
// loaded; the lint rules govern production sources.
func LoadModule(root string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", absRoot, err)
	}
	modPath, err := modulePath(gomod)
	if err != nil {
		return nil, err
	}

	m := &Module{Root: absRoot, Path: modPath, Fset: token.NewFileSet()}
	byPath := make(map[string]*Package)
	err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != absRoot && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		pkg, err := parseDir(m.Fset, absRoot, modPath, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
			m.Pkgs = append(m.Pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(m.Pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages under %s", absRoot)
	}
	if err := m.sortByDeps(byPath); err != nil {
		return nil, err
	}
	if err := m.typeCheck(); err != nil {
		return nil, err
	}
	return m, nil
}

// parseDir parses the non-test Go files of one directory into a Package
// (without type information yet). Directories without Go files yield nil.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && sourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, f := range pkg.Files[1:] {
		if f.Name.Name != pkg.Files[0].Name.Name {
			return nil, fmt.Errorf("analysis: %s: conflicting package names %s and %s",
				dir, pkg.Files[0].Name.Name, f.Name.Name)
		}
	}
	return pkg, nil
}

// imports lists a package's distinct import paths.
func (p *Package) imports() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// sortByDeps orders m.Pkgs so every package follows its intra-module
// dependencies (a topological sort; import cycles are reported).
func (m *Module) sortByDeps(byPath map[string]*Package) error {
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int)
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", p.Path)
		}
		state[p.Path] = visiting
		for _, dep := range p.imports() {
			if q, ok := byPath[dep]; ok {
				if err := visit(q); err != nil {
					return err
				}
			}
		}
		state[p.Path] = done
		order = append(order, p)
		return nil
	}
	// Deterministic root order: by import path.
	sorted := make([]*Package, len(m.Pkgs))
	copy(sorted, m.Pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return err
		}
	}
	m.Pkgs = order
	return nil
}

// moduleImporter resolves intra-module imports from the packages already
// type-checked and everything else (the standard library — the module
// has no external dependencies) through the source importer.
type moduleImporter struct {
	mod map[string]*types.Package
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.mod[path]; ok {
		return p, nil
	}
	return mi.std.Import(path)
}

// typeCheck type-checks every package in dependency order.
func (m *Module) typeCheck() error {
	imp := &moduleImporter{
		mod: make(map[string]*types.Package, len(m.Pkgs)),
		std: importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, p := range m.Pkgs {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.Path, m.Fset, p.Files, info)
		if err != nil {
			return fmt.Errorf("analysis: type-checking %s: %w", p.Path, err)
		}
		p.Types = tpkg
		p.Info = info
		imp.mod[p.Path] = tpkg
	}
	return nil
}

// InScope reports whether the package's import path denotes the named
// project subtree: an exact match or a "/…" suffix match, so rules keyed
// to e.g. "internal/core" fire both on the real module and on fixture
// modules that mirror the layout.
func (p *Package) InScope(subtree string) bool {
	return p.Path == subtree || strings.HasSuffix(p.Path, "/"+subtree)
}
