package client

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/stream"
)

// bootStream is boot with a decision-stream hub wired in.
func bootStream(t *testing.T) (*controller.Controller, *Client, *stream.Hub) {
	t.Helper()
	hub := stream.NewHub("boot-a", 64)
	ctl, cl, _ := boot(t, func(cfg *controller.Config) { cfg.Stream = hub })
	return ctl, cl, hub
}

func TestSyncMirrorMatchesPoll(t *testing.T) {
	ctl, cl, _ := bootStream(t)
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	m := stream.NewMirror()
	if err := cl.Sync(ctx, m); err != nil {
		t.Fatal(err)
	}
	polled, err := cl.PollMirror(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Canonical(), polled.Canonical()) {
		t.Fatalf("sync mirror\n  %s\n!= poll mirror\n  %s", m.Canonical(), polled.Canonical())
	}
	// A second Sync is incremental (delta poll) and stays identical.
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Sync(ctx, m); err != nil {
		t.Fatal(err)
	}
	polled2, err := cl.PollMirror(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Canonical(), polled2.Canonical()) {
		t.Fatalf("incremental sync diverged from poll")
	}
}

func TestSyncBeforeFirstPlanMatchesPoll(t *testing.T) {
	_, cl, _ := bootStream(t)
	m := stream.NewMirror()
	if err := cl.Sync(ctx, m); err != nil {
		t.Fatal(err)
	}
	polled, err := cl.PollMirror(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Canonical(), polled.Canonical()) {
		t.Fatalf("pre-plan sync mirror %s != poll mirror %s", m.Canonical(), polled.Canonical())
	}
}

func TestWatchFollowsSteps(t *testing.T) {
	ctl, cl, _ := bootStream(t)
	ctxw, cancel := context.WithCancel(ctx)
	defer cancel()
	updates := make(chan struct{}, 16)
	w := cl.Watch(ctxw, WatchOptions{
		Wait:     2 * time.Second,
		OnUpdate: func() { updates <- struct{}{} },
	})
	waitUpdate(t, updates) // initial snapshot
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	waitUpdate(t, updates) // the step's delta batch
	var report controller.StepReport
	ok, err := w.Mirror().Decode("", stream.KindPlan, &report)
	if err != nil || !ok {
		t.Fatalf("mirror plan = %v, %v", ok, err)
	}
	want, _ := ctl.LastStep()
	if !report.Time.Equal(want.Time) {
		t.Fatalf("mirror plan time %v != %v", report.Time, want.Time)
	}
	cancel()
	<-w.Done()
	if w.Err() == nil {
		t.Fatal("stopped watcher reports no error")
	}
}

func TestWatchFallsBackToPolling(t *testing.T) {
	// No hub: the stream endpoints 404 and the watcher must still build
	// a correct mirror by polling.
	ctl, cl, _ := boot(t, nil)
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	ctxw, cancel := context.WithCancel(ctx)
	defer cancel()
	updates := make(chan struct{}, 16)
	w := cl.Watch(ctxw, WatchOptions{
		PollInterval: 10 * time.Millisecond,
		OnUpdate:     func() { updates <- struct{}{} },
	})
	waitUpdate(t, updates)
	polled, err := cl.PollMirror(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Mirror().Canonical(), polled.Canonical()) {
		t.Fatalf("fallback mirror diverged from poll reference")
	}
	cancel()
	<-w.Done()
}

func waitUpdate(t *testing.T, ch <-chan struct{}) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no mirror update arrived")
	}
}

// chokepoint kills the TCP connection of every other delta request —
// the "connection dies at every delta boundary" adversary. Snapshot
// fetches are counted, everything else passes through untouched.
type chokepoint struct {
	inner     http.Handler
	snapshots atomic.Int64
	mu        sync.Mutex
	kill      bool // next delta request dies before answering
}

func (cp *chokepoint) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/rest/stream/snapshot") {
		cp.snapshots.Add(1)
	}
	if !strings.HasPrefix(r.URL.Path, "/rest/stream") || strings.HasSuffix(r.URL.Path, "/snapshot") {
		cp.inner.ServeHTTP(w, r)
		return
	}
	cp.mu.Lock()
	kill := cp.kill
	cp.kill = !cp.kill
	cp.mu.Unlock()
	if kill {
		// Slam the connection so the client sees a transport error, not
		// a clean HTTP response.
		panic(http.ErrAbortHandler)
	}
	cp.inner.ServeHTTP(w, r)
}

func TestWatchResumesAcrossKilledConnections(t *testing.T) {
	hub := stream.NewHub("boot-kill", 256)
	ctl, _, _ := boot(t, func(cfg *controller.Config) { cfg.Stream = hub })
	cp := &chokepoint{inner: controller.API(ctl)}
	srv := httptest.NewServer(cp)
	t.Cleanup(srv.Close)
	cl, err := New(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}

	ctxw, cancel := context.WithCancel(ctx)
	defer cancel()
	updates := make(chan struct{}, 64)
	w := cl.Watch(ctxw, WatchOptions{
		Wait:     2 * time.Second,
		OnUpdate: func() { updates <- struct{}{} },
	})
	waitUpdate(t, updates)

	// Every step publishes deltas; between each, the chokepoint kills
	// the next poll's connection, forcing a reconnect that must resume
	// from Last-Event-Seq — never a re-snapshot, never a gap.
	const steps = 5
	for i := 0; i < steps; i++ {
		if _, err := ctl.Step(); err != nil {
			t.Fatal(err)
		}
		waitUpdate(t, updates)
	}
	// The mirror converged to the hub's exact state.
	ref := stream.NewMirror()
	ref.ApplySnapshot(hub.Snapshot())
	deadline := time.Now().Add(5 * time.Second)
	for !bytes.Equal(w.Mirror().Canonical(), ref.Canonical()) {
		if time.Now().After(deadline) {
			t.Fatalf("mirror never converged:\n  %s\nwant:\n  %s",
				w.Mirror().Canonical(), ref.Canonical())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Resume stayed seamless: the mirror still tracks the original
	// instance at the hub's sequence, and every reconnect resumed via
	// Last-Event-Seq — the one snapshot served is the initial connect.
	instance, seq := w.Mirror().Position()
	if instance != "boot-kill" || seq != hub.Seq() {
		t.Fatalf("mirror position = %q/%d, hub at %d", instance, seq, hub.Seq())
	}
	if n := cp.snapshots.Load(); n != 1 {
		t.Fatalf("killed connections forced %d snapshots, want exactly 1 (seamless resume)", n)
	}
	cancel()
	<-w.Done()
}

func TestGetConditional(t *testing.T) {
	ctl, cl, _ := bootStream(t)
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	body, etag, notMod, err := cl.GetConditional(ctx, "/rest/mrt", "")
	if err != nil || notMod || len(body) == 0 || etag == "" {
		t.Fatalf("first conditional GET = %v %q %v %v", len(body), etag, notMod, err)
	}
	body2, etag2, notMod2, err := cl.GetConditional(ctx, "/rest/mrt", etag)
	if err != nil || !notMod2 || body2 != nil || etag2 != etag {
		t.Fatalf("revalidation = %v %q %v %v", len(body2), etag2, notMod2, err)
	}
}

func TestMirrorAccessors(t *testing.T) {
	ctl, cl, _ := bootStream(t)
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	m := stream.NewMirror()
	if err := cl.Sync(ctx, m); err != nil {
		t.Fatal(err)
	}
	if raw, ok := MirrorMRT(m); !ok || len(raw) == 0 {
		t.Fatal("mirror has no MRT")
	}
	rules, err := MirrorFirewallRules(m)
	if err != nil {
		t.Fatal(err)
	}
	want := ctl.Firewall().Rules()
	if len(rules) != len(want) {
		t.Fatalf("mirror rules %v != firewall rules %v", rules, want)
	}
}
