package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/stream"
)

// Stream-sync counters.
var (
	syncSnapshots = metrics.NewCounter("imcf_client_sync_snapshots_total",
		"Full snapshots fetched by the SDK's stream sync.")
	syncBatches = metrics.NewCounter("imcf_client_sync_batches_total",
		"Delta batches applied by the SDK's stream sync.")
	syncFallbacks = metrics.NewCounter("imcf_client_sync_poll_fallbacks_total",
		"Sync passes served by the polling fallback (stream unavailable).")
)

// WatchOptions tunes a Watcher.
type WatchOptions struct {
	// Wait is the long-poll hold time requested per delta poll
	// (?wait=); zero means the server default.
	Wait time.Duration
	// PollInterval spaces poll-fallback rebuilds when the controller
	// has no stream endpoints (default 1s).
	PollInterval time.Duration
	// OnUpdate, when set, runs after every applied snapshot, batch, or
	// poll rebuild — the mirror is current when it fires.
	OnUpdate func()
}

// Watcher maintains a live local mirror of the controller's decision
// stream: snapshot on connect, long-poll deltas resumed via
// Last-Event-Seq, automatic re-snapshot when the server answers 409
// (producer restart or delta-ring gap), and a polling fallback against
// controllers that predate the stream endpoints. Errors back off with
// the client's capped-jitter schedule and the watcher keeps trying
// until its context ends.
type Watcher struct {
	c      *Client
	mirror *stream.Mirror
	opts   WatchOptions
	done   chan struct{}
	err    error
}

// Mirror is the watcher's local replica. Safe to read at any time.
func (w *Watcher) Mirror() *stream.Mirror { return w.mirror }

// Done closes when the watcher has stopped (its context ended).
func (w *Watcher) Done() <-chan struct{} { return w.done }

// Err reports why the watcher stopped, nil before Done closes.
func (w *Watcher) Err() error {
	select {
	case <-w.done:
		return w.err
	default:
		return nil
	}
}

// Watch starts a watcher over the controller's decision stream and
// returns immediately; the mirror fills in as soon as the first
// snapshot (or poll rebuild) lands. The watcher runs until ctx ends.
func (c *Client) Watch(ctx context.Context, opts WatchOptions) *Watcher {
	if opts.PollInterval <= 0 {
		opts.PollInterval = time.Second
	}
	w := &Watcher{c: c, mirror: stream.NewMirror(), opts: opts, done: make(chan struct{})}
	go w.run(ctx)
	return w
}

// run drives the sync loop: stream until an error, fall back to
// polling when streaming is absent, back off and reconnect otherwise.
func (w *Watcher) run(ctx context.Context) {
	defer close(w.done)
	attempt := 0
	for {
		err := w.c.streamSync(ctx, w.mirror, w.opts.Wait, w.opts.OnUpdate)
		if ctx.Err() != nil {
			w.err = ctx.Err()
			return
		}
		if isNotFound(err) {
			syncFallbacks.Inc()
			if err := w.c.PollInto(ctx, w.mirror); err == nil {
				attempt = 0
				if w.opts.OnUpdate != nil {
					w.opts.OnUpdate()
				}
			}
			select {
			case <-ctx.Done():
				w.err = ctx.Err()
				return
			case <-time.After(w.opts.PollInterval):
			}
			continue
		}
		attempt++
		select {
		case <-ctx.Done():
			w.err = ctx.Err()
			return
		case <-time.After(w.c.backoff(attempt)):
		}
	}
}

// Sync brings a mirror up to date once and returns: a resumable mirror
// costs one delta poll (wait=0), anything else one snapshot. The same
// mirror can then be passed to later Sync calls to stay incremental.
func (c *Client) Sync(ctx context.Context, m *stream.Mirror) error {
	instance, seq := m.Position()
	if instance != "" {
		// wait < 0 → ?wait=0: answer immediately, this is a catch-up,
		// not a long poll.
		b, err := c.streamDeltas(ctx, instance, seq, -1)
		if err == nil {
			syncBatches.Inc()
			return m.ApplyBatch(b)
		}
		if !errors.Is(err, errResync) {
			return err
		}
	}
	snap, err := c.streamSnapshot(ctx)
	if err != nil {
		return err
	}
	syncSnapshots.Inc()
	m.ApplySnapshot(snap)
	return nil
}

// errResync is the server's 409: the position cannot be resumed and
// only a fresh snapshot helps.
var errResync = errors.New("client: stream position not resumable")

// isNotFound reports a 404 — from the stream endpoints it is the cue
// to fall back to polling (streaming disabled or an older controller).
func isNotFound(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}

// streamSync runs one streaming session of delta polls until an
// error. A mirror that has synced before resumes from its own position
// — a dropped connection costs no snapshot, only a reconnect — and
// snapshots are fetched only when the mirror is fresh or the server
// answers 409 (producer restart or delta-ring gap). Every applied
// update fires onUpdate.
func (c *Client) streamSync(ctx context.Context, m *stream.Mirror, wait time.Duration, onUpdate func()) error {
	if instance, _ := m.Position(); instance == "" {
		if err := c.resnapshot(ctx, m, onUpdate); err != nil {
			return err
		}
	}
	for {
		instance, seq := m.Position()
		b, err := c.streamDeltas(ctx, instance, seq, wait)
		if errors.Is(err, errResync) {
			if err := c.resnapshot(ctx, m, onUpdate); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		syncBatches.Inc()
		if err := m.ApplyBatch(b); err != nil {
			return err
		}
		if len(b.Events) > 0 && onUpdate != nil {
			onUpdate()
		}
	}
}

// resnapshot replaces the mirror's state with a fresh snapshot.
func (c *Client) resnapshot(ctx context.Context, m *stream.Mirror, onUpdate func()) error {
	snap, err := c.streamSnapshot(ctx)
	if err != nil {
		return err
	}
	syncSnapshots.Inc()
	m.ApplySnapshot(snap)
	if onUpdate != nil {
		onUpdate()
	}
	return nil
}

// streamSnapshot fetches GET /rest/stream/snapshot.
func (c *Client) streamSnapshot(ctx context.Context) (stream.Snapshot, error) {
	var snap stream.Snapshot
	if err := c.get(ctx, "/rest/stream/snapshot", &snap); err != nil {
		return stream.Snapshot{}, err
	}
	return snap, nil
}

// streamDeltas long-polls GET /rest/stream from (instance, seq). A 409
// maps to errResync.
func (c *Client) streamDeltas(ctx context.Context, instance string, seq uint64, wait time.Duration) (stream.Batch, error) {
	path := "/rest/stream?instance=" + url.QueryEscape(instance) +
		"&seq=" + strconv.FormatUint(seq, 10)
	if wait > 0 {
		path += "&wait=" + strconv.FormatFloat(wait.Seconds(), 'f', -1, 64)
	} else if wait < 0 {
		path += "&wait=0"
	}
	var b stream.Batch
	err := c.get(ctx, path, &b)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict {
		return stream.Batch{}, errResync
	}
	return b, err
}

// PollInto rebuilds a mirror's state from the plain REST read surfaces
// — the pre-stream protocol, kept as the fallback path and as the
// equivalence harness's reference construction. The resulting state is
// canonically identical to a stream-maintained mirror's: the same
// marshaler produced both byte streams and the mirror compacts on Set.
func (c *Client) PollInto(ctx context.Context, m *stream.Mirror) error {
	var mrt json.RawMessage
	if err := c.get(ctx, "/rest/mrt", &mrt); err != nil {
		return err
	}
	if err := m.Set("", stream.KindMRT, mrt); err != nil {
		return err
	}
	var plan json.RawMessage
	err := c.get(ctx, "/rest/plan", &plan)
	switch {
	case err == nil:
		if err := m.Set("", stream.KindPlan, plan); err != nil {
			return err
		}
	case isNotFound(err):
		// No plan has run yet; the stream has no plan component either.
		if err := m.Set("", stream.KindPlan, nil); err != nil {
			return err
		}
	default:
		return err
	}
	status, err := c.Firewall(ctx)
	if err != nil {
		return err
	}
	// The stream carries the block set only (counters advance with
	// every flow check and are not state). Rules() is never nil on the
	// wire, but normalize anyway so both constructions render "[]".
	if status.Rules == nil {
		status.Rules = []string{}
	}
	rulesJSON, err := json.Marshal(status.Rules)
	if err != nil {
		return err
	}
	return m.Set("", stream.KindFirewall, rulesJSON)
}

// PollMirror builds a fresh poll-constructed mirror — three GETs, no
// stream involvement.
func (c *Client) PollMirror(ctx context.Context) (*stream.Mirror, error) {
	m := stream.NewMirror()
	if err := c.PollInto(ctx, m); err != nil {
		return nil, err
	}
	return m, nil
}

// GetConditional issues one conditional GET: If-None-Match carries
// etag when non-empty. It returns the body and new ETag, or
// notModified=true (and no body) on 304 — the cheap revalidation the
// stream-versioned read surfaces serve.
func (c *Client) GetConditional(ctx context.Context, path, etag string) (body json.RawMessage, newETag string, notModified bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, "", false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	sdkRequests.Inc()
	resp, err := c.http.Do(req)
	if err != nil {
		sdkErrors.Inc()
		return nil, "", false, fmt.Errorf("client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotModified:
		return nil, resp.Header.Get("ETag"), true, nil
	case resp.StatusCode >= 300:
		sdkErrors.Inc()
		return nil, "", false, &APIError{Status: resp.StatusCode, Message: http.StatusText(resp.StatusCode)}
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", false, fmt.Errorf("client: read %s: %w", path, err)
	}
	return body, resp.Header.Get("ETag"), false, nil
}

// MirrorMRT decodes the mirror's Meta-Rule Table component, ok=false
// when it has not synced yet.
func MirrorMRT(m *stream.Mirror) (raw json.RawMessage, ok bool) {
	return m.Get("", stream.KindMRT)
}

// MirrorFirewallRules decodes the mirror's firewall block set.
func MirrorFirewallRules(m *stream.Mirror) ([]string, error) {
	var rules []string
	if _, err := m.Decode("", stream.KindFirewall, &rules); err != nil {
		return nil, err
	}
	return rules, nil
}
