package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

var ctx = context.Background()

// boot starts a prototype controller behind its API and returns both.
func boot(t *testing.T, mut func(*controller.Config)) (*controller.Controller, *Client, *simclock.SimClock) {
	t.Helper()
	res, err := home.Prototype(42)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSimClock(time.Date(2015, time.January, 10, 20, 0, 0, 0, time.UTC))
	cfg := controller.Config{
		Residence:    res,
		Clock:        clock,
		WeeklyBudget: home.PrototypeWeeklyBudget,
	}
	cfg.Planner.Seed = 5
	if mut != nil {
		mut(&cfg)
	}
	ctl, err := controller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(controller.API(ctl))
	t.Cleanup(srv.Close)
	cl, err := New(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ctl, cl, clock
}

func TestNewValidation(t *testing.T) {
	if _, err := New("not a url", nil); err == nil {
		t.Error("bad URL accepted")
	}
	if _, err := New("", nil); err == nil {
		t.Error("empty URL accepted")
	}
}

func TestItemsAndCommand(t *testing.T) {
	_, cl, _ := boot(t, nil)
	items, err := cl.Items(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Fatalf("items = %d", len(items))
	}
	if err := cl.Command(ctx, items[0].ID, 24); err != nil {
		t.Fatal(err)
	}
	if err := cl.Command(ctx, "ghost", 1); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestPlanLifecycle(t *testing.T) {
	_, cl, clock := boot(t, nil)
	if _, err := cl.LastPlan(ctx); err == nil {
		t.Error("LastPlan before any run succeeded")
	}
	report, err := cl.RunPlan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Budget <= 0 {
		t.Errorf("report = %+v", report)
	}
	clock.Advance(time.Hour)
	if _, err := cl.RunPlan(ctx); err != nil {
		t.Fatal(err)
	}

	last, err := cl.LastPlan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	history, err := cl.PlanHistory(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 || !history[1].Time.Equal(last.Time) {
		t.Errorf("history = %d entries", len(history))
	}
	sum, err := cl.Summary(ctx)
	if err != nil || sum.Steps != 2 {
		t.Errorf("summary = %+v, %v", sum, err)
	}
}

func TestMRTAndConflicts(t *testing.T) {
	_, cl, _ := boot(t, nil)
	mrt, err := cl.MRT(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrt.Rules) != 10 {
		t.Fatalf("mrt = %d rules", len(mrt.Rules))
	}
	conflicts, err := cl.Conflicts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("conflicts = %+v", conflicts)
	}
	// Round trip an update.
	mrt.Rules = mrt.Rules[:5]
	if err := cl.SetMRT(ctx, mrt); err != nil {
		t.Fatal(err)
	}
	back, err := cl.MRT(ctx)
	if err != nil || len(back.Rules) != 5 {
		t.Errorf("after update: %d rules, %v", len(back.Rules), err)
	}
}

func TestBlockedCommand(t *testing.T) {
	ctl, cl, _ := boot(t, func(cfg *controller.Config) {
		cfg.WeeklyBudget = units.Energy(1e-9)
	})
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	err := cl.Command(ctx, "proto/z0/hvac", 28)
	if err == nil {
		t.Fatal("command to blocked device succeeded")
	}
	if !IsBlocked(err) {
		t.Errorf("IsBlocked(%v) = false", err)
	}
	fw, err := cl.Firewall(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Rules) == 0 || fw.Dropped == 0 {
		t.Errorf("firewall = %+v", fw)
	}
}

func TestPersistenceQueries(t *testing.T) {
	svc, err := persistence.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	_, cl, clock := boot(t, func(cfg *controller.Config) { cfg.Persistence = svc })

	for i := 0; i < 4; i++ {
		if _, err := cl.RunPlan(ctx); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	items, err := cl.PersistenceItems(ctx)
	if err != nil || len(items) != 6 {
		t.Fatalf("items = %v, %v", items, err)
	}
	from := time.Date(2015, time.January, 10, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 0, 1)
	points, err := cl.Readings(ctx, "zone0/temperature", from, to)
	if err != nil || len(points) != 4 {
		t.Fatalf("points = %d, %v", len(points), err)
	}
	buckets, err := cl.Aggregates(ctx, "zone0/temperature", from, to, 2*time.Hour)
	if err != nil || len(buckets) == 0 {
		t.Fatalf("buckets = %v, %v", buckets, err)
	}
	if _, err := cl.Readings(ctx, "ghost", from, to); err == nil {
		t.Error("ghost item accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	_, cl, _ := boot(t, nil)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Items(cancelled); err == nil {
		t.Error("cancelled context succeeded")
	}
}
