package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

var ctx = context.Background()

// boot starts a prototype controller behind its API and returns both.
func boot(t *testing.T, mut func(*controller.Config)) (*controller.Controller, *Client, *simclock.SimClock) {
	t.Helper()
	res, err := home.Prototype(42)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSimClock(time.Date(2015, time.January, 10, 20, 0, 0, 0, time.UTC))
	cfg := controller.Config{
		Residence:    res,
		Clock:        clock,
		WeeklyBudget: home.PrototypeWeeklyBudget,
	}
	cfg.Planner.Seed = 5
	if mut != nil {
		mut(&cfg)
	}
	ctl, err := controller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(controller.API(ctl))
	t.Cleanup(srv.Close)
	cl, err := New(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ctl, cl, clock
}

func TestNewValidation(t *testing.T) {
	if _, err := New("not a url", nil); err == nil {
		t.Error("bad URL accepted")
	}
	if _, err := New("", nil); err == nil {
		t.Error("empty URL accepted")
	}
}

func TestItemsAndCommand(t *testing.T) {
	_, cl, _ := boot(t, nil)
	items, err := cl.Items(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Fatalf("items = %d", len(items))
	}
	if err := cl.Command(ctx, items[0].ID, 24); err != nil {
		t.Fatal(err)
	}
	if err := cl.Command(ctx, "ghost", 1); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestPlanLifecycle(t *testing.T) {
	_, cl, clock := boot(t, nil)
	if _, err := cl.LastPlan(ctx); err == nil {
		t.Error("LastPlan before any run succeeded")
	}
	report, err := cl.RunPlan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Budget <= 0 {
		t.Errorf("report = %+v", report)
	}
	clock.Advance(time.Hour)
	if _, err := cl.RunPlan(ctx); err != nil {
		t.Fatal(err)
	}

	last, err := cl.LastPlan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	history, err := cl.PlanHistory(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 || !history[1].Time.Equal(last.Time) {
		t.Errorf("history = %d entries", len(history))
	}
	sum, err := cl.Summary(ctx)
	if err != nil || sum.Steps != 2 {
		t.Errorf("summary = %+v, %v", sum, err)
	}
}

func TestMRTAndConflicts(t *testing.T) {
	_, cl, _ := boot(t, nil)
	mrt, err := cl.MRT(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrt.Rules) != 10 {
		t.Fatalf("mrt = %d rules", len(mrt.Rules))
	}
	conflicts, err := cl.Conflicts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("conflicts = %+v", conflicts)
	}
	// Round trip an update.
	mrt.Rules = mrt.Rules[:5]
	if err := cl.SetMRT(ctx, mrt); err != nil {
		t.Fatal(err)
	}
	back, err := cl.MRT(ctx)
	if err != nil || len(back.Rules) != 5 {
		t.Errorf("after update: %d rules, %v", len(back.Rules), err)
	}
}

func TestBlockedCommand(t *testing.T) {
	ctl, cl, _ := boot(t, func(cfg *controller.Config) {
		cfg.WeeklyBudget = units.Energy(1e-9)
	})
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	err := cl.Command(ctx, "proto/z0/hvac", 28)
	if err == nil {
		t.Fatal("command to blocked device succeeded")
	}
	if !IsBlocked(err) {
		t.Errorf("IsBlocked(%v) = false", err)
	}
	fw, err := cl.Firewall(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Rules) == 0 || fw.Dropped == 0 {
		t.Errorf("firewall = %+v", fw)
	}
}

func TestPersistenceQueries(t *testing.T) {
	svc, err := persistence.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	_, cl, clock := boot(t, func(cfg *controller.Config) { cfg.Persistence = svc })

	for i := 0; i < 4; i++ {
		if _, err := cl.RunPlan(ctx); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	items, err := cl.PersistenceItems(ctx)
	if err != nil || len(items) != 6 {
		t.Fatalf("items = %v, %v", items, err)
	}
	from := time.Date(2015, time.January, 10, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 0, 1)
	points, err := cl.Readings(ctx, "zone0/temperature", from, to)
	if err != nil || len(points) != 4 {
		t.Fatalf("points = %d, %v", len(points), err)
	}
	buckets, err := cl.Aggregates(ctx, "zone0/temperature", from, to, 2*time.Hour)
	if err != nil || len(buckets) == 0 {
		t.Fatalf("buckets = %v, %v", buckets, err)
	}
	if _, err := cl.Readings(ctx, "ghost", from, to); err == nil {
		t.Error("ghost item accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	_, cl, _ := boot(t, nil)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Items(cancelled); err == nil {
		t.Error("cancelled context succeeded")
	}
}

// flakyServer answers with the scripted status codes (plus optional
// headers) in order, then 200 {"ok":true} forever. It records the
// Retry-After each failing response advertised.
func flakyServer(t *testing.T, script []int, headers map[string]string) (*httptest.Server, *int32) {
	t.Helper()
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt32(&calls, 1)
		if int(n) <= len(script) {
			for k, v := range headers {
				w.Header().Set(k, v)
			}
			w.WriteHeader(script[int(n)-1])
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck // test server
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestRetryOn5xxAnd429(t *testing.T) {
	srv, calls := flakyServer(t, []int{503, 429, 500}, nil)
	cl, err := New(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	cl.WithRetries(5)
	if err := cl.get(ctx, "/", new(map[string]bool)); err != nil {
		t.Fatalf("get after 503/429/500: %v", err)
	}
	if got := atomic.LoadInt32(calls); got != 4 {
		t.Fatalf("server saw %d calls, want 4 (3 failures + success)", got)
	}

	// 4xx other than 429 must NOT be retried.
	srv2, calls2 := flakyServer(t, []int{404}, nil)
	cl2, err := New(srv2.URL, srv2.Client())
	if err != nil {
		t.Fatal(err)
	}
	cl2.WithRetries(5)
	err = cl2.get(ctx, "/", new(map[string]bool))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if got := atomic.LoadInt32(calls2); got != 1 {
		t.Fatalf("404 retried: server saw %d calls", got)
	}
}

func TestRetryExhaustionReturnsLastStatus(t *testing.T) {
	srv, calls := flakyServer(t, []int{503, 503, 503, 503}, nil)
	cl, err := New(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	cl.WithRetries(2)
	err = cl.get(ctx, "/", new(map[string]bool))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

func TestBackoffShape(t *testing.T) {
	cl, err := New("http://controller.example:8088", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential growth with jitter in [d/2, d], capped.
	for attempt, want := range map[int]time.Duration{
		1: backoffBase,      // 10ms
		2: 2 * backoffBase,  // 20ms
		5: 16 * backoffBase, // 160ms
		9: backoffCap,       // 2.56s uncapped -> 2s
	} {
		for i := 0; i < 32; i++ {
			d := cl.backoff(attempt)
			if d < want/2 || d > want {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// Absurd attempt counts must not overflow past the cap.
	for _, attempt := range []int{60, 63, 64, 1000} {
		if d := cl.backoff(attempt); d < backoffCap/2 || d > backoffCap {
			t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, d, backoffCap/2, backoffCap)
		}
	}
	// Determinism: a client with the same base URL replays the same
	// jitter sequence.
	a, _ := New("http://controller.example:8088", nil)
	b, _ := New("http://controller.example:8088", nil)
	for i := 1; i <= 16; i++ {
		if da, db := a.backoff(i), b.backoff(i); da != db {
			t.Fatalf("attempt %d: %v != %v — jitter not deterministic per base URL", i, da, db)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"5", 5 * time.Second, true},
		{" 2 ", 2 * time.Second, true},
		{"0", 0, true},
		{"-3", 0, false},
		{"junk", 0, false},
		{"120", retryAfterCap, true}, // capped
	}
	// The clock is injected: the HTTP-date cases below measure against a
	// fixed instant, no wall-clock reads, no sleeping through real dates.
	base := time.Date(2015, time.January, 10, 20, 0, 0, 0, time.UTC)
	now := func() time.Time { return base }
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	// HTTP-date in the past clamps to zero; in the future it is honored
	// exactly (the injected clock leaves no scheduling slop) and capped.
	if d, ok := parseRetryAfter(base.Add(-time.Hour).Format(http.TimeFormat), now); !ok || d != 0 {
		t.Errorf("past date = %v, %v; want 0, true", d, ok)
	}
	if d, ok := parseRetryAfter(base.Add(10*time.Second).Format(http.TimeFormat), now); !ok || d != 10*time.Second {
		t.Errorf("near-future date = %v, %v; want 10s, true", d, ok)
	}
	if d, ok := parseRetryAfter(base.Add(time.Hour).Format(http.TimeFormat), now); !ok || d != retryAfterCap {
		t.Errorf("far-future date = %v, %v; want %v, true", d, ok, retryAfterCap)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	srv, calls := flakyServer(t, []int{503}, map[string]string{"Retry-After": "1"})
	cl, err := New(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	cl.WithRetries(1)
	start := time.Now()
	if err := cl.get(ctx, "/", new(map[string]bool)); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(calls); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	// The advertised 1s must be respected (the computed backoff for
	// attempt 1 would be at most 10ms).
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= ~1s (Retry-After honored)", elapsed)
	}
}
