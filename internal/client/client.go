// Package client is the Go SDK for the IMCF Local Controller's REST API
// — the programmatic equivalent of the mobile APP in the paper's
// architecture (Fig. 3). It works equally against a controller directly
// or through the Cloud Controller relay (point it at
// "<relay>/cc/sites/<site>").
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/rules"
)

// SDK request counters.
var (
	sdkRequests = metrics.NewCounter("imcf_client_requests_total",
		"HTTP requests issued by the Go SDK, including retries.")
	sdkRetries = metrics.NewCounter("imcf_client_retries_total",
		"SDK requests re-issued after a transport error, 5xx or 429.")
	sdkErrors = metrics.NewCounter("imcf_client_errors_total",
		"SDK requests that ended in a transport error or non-2xx status.")
)

// Backoff policy: exponential growth from backoffBase, capped at
// backoffCap, with deterministic jitter in [d/2, d]. A server-supplied
// Retry-After (daemon degraded mode sends one on its 503s) overrides
// the computed delay, capped at retryAfterCap so a confused server
// cannot park the client for minutes.
const (
	backoffBase   = 10 * time.Millisecond
	backoffCap    = 2 * time.Second
	retryAfterCap = 30 * time.Second
)

// Client talks to one Local Controller.
type Client struct {
	base    string
	http    *http.Client
	retries int
	now     func() time.Time // clock seam for Retry-After HTTP-dates

	mu  sync.Mutex // guards rng
	rng *rand.Rand // jitter source, seeded from base for reproducibility
}

// New returns a client for the controller at baseURL. httpClient nil
// means http.DefaultClient.
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	// Jitter is seeded from the base URL: retry timing is reproducible
	// for a given target, while clients of distinct controllers (or
	// relay paths) still spread out.
	h := fnv.New64a()
	h.Write([]byte(baseURL)) //nolint:errcheck // fnv writes never fail
	return &Client{
		base: strings.TrimSuffix(baseURL, "/"),
		http: httpClient,
		now:  time.Now,
		rng:  rand.New(rand.NewPCG(h.Sum64(), 0x9e3779b97f4a7c15)),
	}, nil
}

// WithRetries returns the client configured to re-issue requests up to
// n extra times on transport errors, 5xx responses or 429s, with
// capped exponential backoff and deterministic jitter; a Retry-After
// header on the response overrides the computed delay. Non-idempotent
// POSTs are retried too: every controller route tolerates replay (plan
// cycles are re-runnable, MRT/commands are idempotent writes).
func (c *Client) WithRetries(n int) *Client {
	if n < 0 {
		n = 0
	}
	c.retries = n
	return c
}

// APIError is a non-2xx response from the controller.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: controller returned %d: %s", e.Status, e.Message)
}

// Item is one device row from GET /rest/items.
type Item struct {
	ID       string  `json:"id"`
	Name     string  `json:"name"`
	Class    string  `json:"class"`
	Zone     int     `json:"zone"`
	Addr     string  `json:"addr"`
	On       bool    `json:"on"`
	Setpoint float64 `json:"setpoint"`
	Commands int     `json:"commands"`
	Blocked  bool    `json:"blocked"`
}

// FirewallStatus is the GET /rest/firewall response.
type FirewallStatus struct {
	Rules   []string `json:"rules"`
	Allowed int64    `json:"allowed"`
	Dropped int64    `json:"dropped"`
}

// Point is one persisted reading.
type Point struct {
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// Items lists the controller's devices.
func (c *Client) Items(ctx context.Context) ([]Item, error) {
	var out []Item
	return out, c.get(ctx, "/rest/items", &out)
}

// Command manually actuates a device. A firewall-blocked device returns
// an *APIError with status 403.
func (c *Client) Command(ctx context.Context, deviceID string, value float64) error {
	return c.post(ctx, "/rest/items/"+deviceID+"/command", map[string]float64{"value": value}, nil)
}

// MRT fetches the active Meta-Rule Table.
func (c *Client) MRT(ctx context.Context) (rules.MRT, error) {
	var out rules.MRT
	return out, c.get(ctx, "/rest/mrt", &out)
}

// SetMRT replaces the Meta-Rule Table.
func (c *Client) SetMRT(ctx context.Context, mrt rules.MRT) error {
	return c.post(ctx, "/rest/mrt", mrt, nil)
}

// Conflicts runs the MRT conflict analysis.
func (c *Client) Conflicts(ctx context.Context) ([]rules.Conflict, error) {
	var out []rules.Conflict
	return out, c.get(ctx, "/rest/mrt/conflicts", &out)
}

// RunPlan triggers one EP cycle and returns its report.
func (c *Client) RunPlan(ctx context.Context) (controller.StepReport, error) {
	var out controller.StepReport
	return out, c.post(ctx, "/rest/plan/run", nil, &out)
}

// LastPlan fetches the most recent EP report.
func (c *Client) LastPlan(ctx context.Context) (controller.StepReport, error) {
	var out controller.StepReport
	return out, c.get(ctx, "/rest/plan", &out)
}

// PlanHistory fetches up to a week of EP reports, oldest first.
func (c *Client) PlanHistory(ctx context.Context) ([]controller.StepReport, error) {
	var out []controller.StepReport
	return out, c.get(ctx, "/rest/plan/history", &out)
}

// Summary fetches the lifetime metrics.
func (c *Client) Summary(ctx context.Context) (controller.Summary, error) {
	var out controller.Summary
	return out, c.get(ctx, "/rest/summary", &out)
}

// Firewall fetches the flow table state.
func (c *Client) Firewall(ctx context.Context) (FirewallStatus, error) {
	var out FirewallStatus
	return out, c.get(ctx, "/rest/firewall", &out)
}

// PersistenceItems lists recorded measurement items.
func (c *Client) PersistenceItems(ctx context.Context) ([]string, error) {
	var out []string
	return out, c.get(ctx, "/rest/persistence/items", &out)
}

// Readings fetches an item's raw readings in [from, to).
func (c *Client) Readings(ctx context.Context, item string, from, to time.Time) ([]Point, error) {
	var out []Point
	path := fmt.Sprintf("/rest/persistence/data/%s?from=%s&to=%s",
		item, url.QueryEscape(from.Format(time.RFC3339)), url.QueryEscape(to.Format(time.RFC3339)))
	return out, c.get(ctx, path, &out)
}

// Aggregates fetches an item's bucketed statistics in [from, to).
func (c *Client) Aggregates(ctx context.Context, item string, from, to time.Time, bucket time.Duration) ([]persistence.Bucket, error) {
	var out []persistence.Bucket
	path := fmt.Sprintf("/rest/persistence/data/%s?from=%s&to=%s&bucket=%s",
		item, url.QueryEscape(from.Format(time.RFC3339)), url.QueryEscape(to.Format(time.RFC3339)), bucket)
	return out, c.get(ctx, path, &out)
}

// backoff returns the delay before retry number attempt (1-based):
// exponential growth from backoffBase capped at backoffCap, jittered
// into [d/2, d] so synchronized clients de-correlate. The jitter
// stream is per-client and seeded, so a test (or a replayed trace)
// sees the same delays every run.
func (c *Client) backoff(attempt int) time.Duration {
	d := backoffCap
	if attempt < 63 { // avoid shifting into the sign bit
		if shifted := backoffBase << (attempt - 1); shifted > 0 && shifted < backoffCap {
			d = shifted
		}
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int64N(int64(d)/2 + 1))
	c.mu.Unlock()
	return d/2 + j
}

// parseRetryAfter interprets a Retry-After header, either delta-seconds
// or an HTTP-date, capped at retryAfterCap. ok is false when the header
// is absent or unparseable. The HTTP-date branch measures against now —
// the client's injectable clock, not the wall — so tests exercise real
// dates without sleeping through them.
func parseRetryAfter(h string, now func() time.Time) (d time.Duration, ok bool) {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0, false
		}
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(h); err == nil {
		d = t.Sub(now())
		if d < 0 {
			d = 0
		}
	} else {
		return 0, false
	}
	return min(d, retryAfterCap), true
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	return c.do(ctx, http.MethodPost, path, body, out)
}

// do issues one request (with retries). Tracing: a TraceContext already
// on ctx is propagated via the traceparent header; otherwise the SDK
// mints a fresh trace — the APP is the root of the causal chain, so
// every hop downstream (relay, controller, firewall, journal) shares
// the ID this call stamps.
func (c *Client) do(ctx context.Context, method, path string, body, out any) (err error) {
	tc, hasTrace := metrics.TraceFrom(ctx)
	if !hasTrace {
		tc = metrics.NewTrace()
	}
	sp := metrics.StartSpanTrace("client.request", nil, tc.TraceIDString())
	defer func() { sp.End(err) }()

	var raw []byte
	if body != nil {
		raw, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
	} else if method == http.MethodPost {
		raw = []byte("{}")
	}
	var wait time.Duration // delay before the next attempt, set at the failure site
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			sdkRetries.Inc()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		}
		// The request (and its body reader) is rebuilt every attempt: a
		// consumed reader cannot be replayed.
		var payload io.Reader
		if raw != nil {
			payload = bytes.NewReader(raw)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, payload)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		metrics.InjectTrace(req, tc)
		sdkRequests.Inc()
		resp, err := c.http.Do(req)
		if err != nil {
			sdkErrors.Inc()
			if attempt < c.retries && ctx.Err() == nil {
				wait = c.backoff(attempt + 1)
				obs.L().LogAttrs(ctx, slog.LevelDebug, "client retrying after transport error",
					slog.String("method", method), slog.String("path", path),
					slog.Int("attempt", attempt+1), obs.Error(err))
				continue
			}
			obs.L().LogAttrs(ctx, slog.LevelWarn, "client request failed",
				slog.String("method", method), slog.String("path", path), obs.Error(err))
			return fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if resp.StatusCode >= 300 {
			sdkErrors.Inc()
			var e struct {
				Error string `json:"error"`
			}
			msg := http.StatusText(resp.StatusCode)
			if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
				msg = e.Error
			}
			retryAfter := resp.Header.Get("Retry-After")
			resp.Body.Close()
			retryable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
			if retryable && attempt < c.retries {
				// A degraded or throttling server knows when to come back
				// better than our schedule does — honor its Retry-After.
				if d, ok := parseRetryAfter(retryAfter, c.now); ok {
					wait = d
				} else {
					wait = c.backoff(attempt + 1)
				}
				obs.L().LogAttrs(ctx, slog.LevelDebug, "client retrying after server status",
					slog.String("method", method), slog.String("path", path),
					slog.Int("status", resp.StatusCode), slog.Int("attempt", attempt+1))
				continue
			}
			return &APIError{Status: resp.StatusCode, Message: msg}
		}
		if out == nil {
			resp.Body.Close()
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("client: decode %s response: %w", path, err)
		}
		return nil
	}
}

// IsBlocked reports whether err is the firewall rejecting a command.
func IsBlocked(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusForbidden
}
