package metrics

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewTraceAndFormat(t *testing.T) {
	tc := NewTrace()
	if !tc.Valid() {
		t.Fatal("NewTrace not valid")
	}
	tp := tc.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(tp), tp)
	}
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent framing: %q", tp)
	}
	if got := len(tc.TraceIDString()); got != 32 {
		t.Fatalf("trace id hex length = %d", got)
	}

	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Fatal("Child changed the trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Fatal("Child kept the span id")
	}

	if (TraceContext{}).Valid() {
		t.Fatal("zero TraceContext reported valid")
	}
	a, b := NewTrace(), NewTrace()
	if a.TraceID == b.TraceID {
		t.Fatal("two minted traces collided")
	}
}

func TestParseTraceparent(t *testing.T) {
	tc := NewTrace()
	back, ok := ParseTraceparent(tc.Traceparent())
	if !ok {
		t.Fatal("round trip rejected")
	}
	if back.TraceID != tc.TraceID || back.SpanID != tc.SpanID {
		t.Fatal("round trip mangled ids")
	}

	bad := []string{
		"",
		"00-short",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version ff
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331-01", // bad dash
		"00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad hex
		"00-0af7651916cd43dd8448eb211c80319c-zzad6b7169203331-01", // bad span hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent accepted %q", s)
		}
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceFrom(ctx); ok {
		t.Fatal("empty context has a trace")
	}
	if got := TraceIDFrom(ctx); got != "" {
		t.Fatalf("TraceIDFrom(empty) = %q", got)
	}
	tc := NewTrace()
	ctx = ContextWithTrace(ctx, tc)
	back, ok := TraceFrom(ctx)
	if !ok || back != tc {
		t.Fatal("context round trip failed")
	}
	if got := TraceIDFrom(ctx); got != tc.TraceIDString() {
		t.Fatalf("TraceIDFrom = %q", got)
	}
}

func TestInjectTrace(t *testing.T) {
	tc := NewTrace()
	req := httptest.NewRequest("GET", "/x", nil)
	InjectTrace(req, tc)
	got, ok := ParseTraceparent(req.Header.Get(TraceHeader))
	if !ok {
		t.Fatal("injected header unparseable")
	}
	if got.TraceID != tc.TraceID {
		t.Fatal("injected header changed trace id")
	}
	if got.SpanID == tc.SpanID {
		t.Fatal("injected header must carry a child span id")
	}
}

func TestTraceMiddleware(t *testing.T) {
	var seen TraceContext
	h := TraceMiddleware("test.handler", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen, _ = TraceFrom(r.Context())
	}))

	// Propagated: upstream traceparent wins.
	up := NewTrace()
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(TraceHeader, up.Traceparent())
	rr := httptest.NewRecorder()
	propBefore := tracePropagated.Value()
	h.ServeHTTP(rr, req)
	if seen.TraceID != up.TraceID {
		t.Fatal("middleware dropped the upstream trace id")
	}
	if tracePropagated.Value() != propBefore+1 {
		t.Fatal("propagated counter not incremented")
	}
	if echo, ok := ParseTraceparent(rr.Header().Get(TraceHeader)); !ok || echo.TraceID != up.TraceID {
		t.Fatal("middleware did not echo the trace on the response")
	}

	// Minted: no upstream header.
	mintBefore := traceMinted.Value()
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if !seen.Valid() {
		t.Fatal("middleware did not mint a trace")
	}
	if traceMinted.Value() != mintBefore+1 {
		t.Fatal("minted counter not incremented")
	}

	// The handled span lands in the default tracer ring, trace-tagged.
	if spans := DefaultTracer().ByTrace(seen.TraceIDString()); len(spans) == 0 {
		t.Fatal("middleware recorded no span for the minted trace")
	} else if spans[0].Name != "test.handler" {
		t.Fatalf("span name = %q", spans[0].Name)
	}
}

func TestTracerByTrace(t *testing.T) {
	tr := NewTracer(8)
	tc := NewTrace()
	tr.StartSpanTrace("a", nil, tc.TraceIDString()).End(nil)
	tr.StartSpanTrace("b", nil, "other").End(nil)
	tr.StartSpan("c", nil).End(nil)

	got := tr.ByTrace(tc.TraceIDString())
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("ByTrace = %+v", got)
	}
	if tr.ByTrace("") != nil {
		t.Fatal("ByTrace(\"\") must return nil")
	}
}
