package metrics

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
)

// TestHistogramProperties drives random observation sequences through
// random bucket layouts and checks the structural invariants: bucket
// counts are monotone cumulative, the +Inf bucket equals the total
// count, and sum/count match the sequence exactly.
func TestHistogramProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 13))
	for trial := 0; trial < 50; trial++ {
		// Random strictly ascending bounds.
		nb := 1 + rng.IntN(12)
		bounds := make([]float64, nb)
		x := rng.Float64() * 10
		for i := range bounds {
			x += 0.01 + rng.Float64()*20
			bounds[i] = x
		}
		h := NewDetachedHistogram(bounds)

		n := rng.IntN(500)
		var wantSum float64
		var perBucket = make([]uint64, nb+1)
		for i := 0; i < n; i++ {
			// Integer-valued observations so float sums are exact in
			// any order.
			v := float64(rng.IntN(200))
			h.Observe(v)
			wantSum += v
			j := 0
			for j < nb && v > bounds[j] {
				j++
			}
			perBucket[j]++
		}

		s := h.Snapshot()
		if h.Count() != uint64(n) || s.Count != uint64(n) {
			t.Fatalf("trial %d: count %d/%d, want %d", trial, h.Count(), s.Count, n)
		}
		if h.Sum() != wantSum {
			t.Fatalf("trial %d: sum %v, want %v", trial, h.Sum(), wantSum)
		}
		var cum uint64
		for i, b := range s.Buckets {
			cum += perBucket[i]
			if b.Count != cum {
				t.Fatalf("trial %d: bucket %d cumulative count %d, want %d", trial, i, b.Count, cum)
			}
			if i > 0 && b.Count < s.Buckets[i-1].Count {
				t.Fatalf("trial %d: bucket counts not monotone at %d", trial, i)
			}
		}
		if !math.IsInf(s.Buckets[len(s.Buckets)-1].LE, 1) {
			t.Fatalf("trial %d: last bucket bound not +Inf", trial)
		}
		if s.Buckets[len(s.Buckets)-1].Count != uint64(n) {
			t.Fatalf("trial %d: +Inf bucket %d, want %d", trial, s.Buckets[len(s.Buckets)-1].Count, n)
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from 8
// goroutines and checks that no sample is lost: total count, +Inf
// bucket and the exact integer sum all match. Run under -race this also
// proves the observation path is race-clean.
func TestHistogramConcurrentObserve(t *testing.T) {
	const goroutines = 8
	const perG = 5000
	h := NewDetachedHistogram([]float64{10, 50, 100, 500})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 99))
			for i := 0; i < perG; i++ {
				// Integer values keep the float sum order-independent.
				h.Observe(float64(rng.IntN(1000)))
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	if h.Count() != total {
		t.Fatalf("count %d, want %d: samples lost", h.Count(), total)
	}
	s := h.Snapshot()
	if inf := s.Buckets[len(s.Buckets)-1].Count; inf != total {
		t.Fatalf("+Inf bucket %d, want %d", inf, total)
	}
	// Recompute the exact expected sum from the same deterministic
	// per-goroutine streams.
	var wantSum float64
	for g := 0; g < goroutines; g++ {
		rng := rand.New(rand.NewPCG(uint64(g), 99))
		for i := 0; i < perG; i++ {
			wantSum += float64(rng.IntN(1000))
		}
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum %v, want %v: CAS accumulation lost an update", h.Sum(), wantSum)
	}
}

// TestCounterConcurrent checks integer and float counters under
// concurrent mutation.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "c")
	f := r.FloatCounter("conc_kwh", "f")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc()
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 80000 {
		t.Fatalf("counter %d, want 80000", c.Value())
	}
	if f.Value() != 40000 {
		t.Fatalf("float counter %v, want 40000", f.Value())
	}
}

// TestHistogramBucketEdges pins the boundary semantics: le is
// inclusive, matching Prometheus ("observations less than or equal to
// the bound").
func TestHistogramBucketEdges(t *testing.T) {
	h := NewDetachedHistogram([]float64{1, 2})
	h.Observe(1) // on the bound: belongs to le="1"
	h.Observe(1.0000001)
	h.Observe(2)
	h.Observe(3)
	s := h.Snapshot()
	if s.Buckets[0].Count != 1 {
		t.Errorf(`le="1" = %d, want 1`, s.Buckets[0].Count)
	}
	if s.Buckets[1].Count != 3 {
		t.Errorf(`le="2" = %d, want 3`, s.Buckets[1].Count)
	}
	if s.Buckets[2].Count != 4 {
		t.Errorf(`le="+Inf" = %d, want 4`, s.Buckets[2].Count)
	}
}
