package metrics

import (
	"strings"
	"testing"
)

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_shard_records", "Per-shard records.", "shard")
	s0 := v.With("0")
	if v.With("0") != s0 {
		t.Fatal("With must cache children")
	}
	s0.Set(41)
	s0.Add(1)
	v.With("1").Set(7)
	out := render(r)
	if !strings.Contains(out, `test_shard_records{shard="0"} 42`) ||
		!strings.Contains(out, `test_shard_records{shard="1"} 7`) {
		t.Errorf("vec exposition wrong:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE test_shard_records gauge") {
		t.Errorf("missing gauge TYPE line:\n%s", out)
	}
	if v2 := r.GaugeVec("test_shard_records", "again", "shard"); v2 != v {
		t.Fatal("re-registering the same vec name must return the same collector")
	}
}

func TestGaugeVecDefaultRegistry(t *testing.T) {
	v := NewGaugeVec("short_by_shard", "v", "shard")
	if NewGaugeVec("short_by_shard", "again", "shard") != v {
		t.Fatal("NewGaugeVec must dedupe on the Default registry")
	}
	v.With("3").Set(1)
}

func TestGaugeVecArityPanics(t *testing.T) {
	v := NewRegistry().GaugeVec("arity_gauge", "v", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity must panic")
		}
	}()
	v.With("only-one")
}

func TestGaugeVecTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_metric_total", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge vec must panic")
		}
	}()
	r.GaugeVec("clash_metric_total", "g", "shard")
}
