package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// DurationBuckets are the default upper bounds (seconds) for latency
// histograms: 10µs to 2.5s, roughly logarithmic. They cover the
// planner's per-window spread from the 6-rule flat to the 600-rule
// dorms dataset.
var DurationBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// Histogram is a fixed-bucket histogram. Observe is lock-free and
// allocation-free: one atomic add on the bucket, one on the count, and
// a CAS loop on the float sum. Buckets are cumulative only at
// exposition time; internally each slot counts its own interval.
type Histogram struct {
	name   string
	help   string
	bounds []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64

	// exemplars holds each bucket's most recent trace-tagged sample
	// (len(bounds)+1, lazily allocated on the first ObserveExemplar).
	// It is off the Observe hot path: only trace-carrying call sites
	// (one per HTTP-driven planning cycle) pay the mutex.
	exMu      sync.Mutex
	exemplars []exemplar
}

// exemplar is one bucket's most recent trace-tagged observation.
type exemplar struct {
	value float64
	trace string
}

// newHistogram builds a histogram, copying and validating the bounds.
func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not strictly ascending at %d", name, i))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewDetachedHistogram returns a histogram that belongs to no registry,
// for callers that want per-run local aggregation (the simulator's
// per-window plan latency) without touching process-global state.
func NewDetachedHistogram(buckets []float64) *Histogram {
	return newHistogram("", "", buckets)
}

// bucketIndex returns the index of the bucket v falls in, the +Inf
// bucket included. Linear scan: bucket counts are small (≤ ~20) and the
// scan is branch-predictable, beating binary search at this size.
//
//imcf:noalloc
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one sample.
//
//imcf:noalloc
func (h *Histogram) Observe(v float64) {
	if disabled.Load() {
		return
	}
	i := h.bucketIndex(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration given in seconds — an alias kept
// for call-site readability next to span timing.
//
//imcf:noalloc
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// ObserveExemplar records one sample and, when trace is non-empty,
// stores (v, trace) as the sample's bucket exemplar — the link from a
// latency outlier to the causal trace that produced it, served at
// /debug/exemplars. Pass a real trace ID or use Observe: a statically
// empty trace literal is a metrics-hygiene lint finding.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	h.Observe(v)
	if trace == "" || disabled.Load() {
		return
	}
	i := h.bucketIndex(v)
	h.exMu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, len(h.bounds)+1)
	}
	h.exemplars[i] = exemplar{value: v, trace: trace}
	h.exMu.Unlock()
}

// Exemplar is one bucket's exemplar as exposed on /debug/exemplars.
// LE is the bucket's upper bound rendered like the exposition format
// ("+Inf" for the overflow bucket).
type Exemplar struct {
	LE    string  `json:"le"`
	Value float64 `json:"value"`
	Trace string  `json:"trace"`
}

// Exemplars returns the histogram's bucket exemplars, lowest bound
// first, omitting buckets that never saw a trace-tagged observation.
func (h *Histogram) Exemplars() []Exemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	var out []Exemplar
	for i := range h.exemplars {
		ex := h.exemplars[i]
		if ex.trace == "" {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		out = append(out, Exemplar{LE: le, Value: ex.value, Trace: ex.trace})
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) writeTo(w *bufio.Writer) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		w.WriteString(h.name)         //nolint:errcheck
		w.WriteString(`_bucket{le="`) //nolint:errcheck
		writeFloat(w, b)
		fmt.Fprintf(w, "\"} %d\n", cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	w.WriteString(h.name)  //nolint:errcheck
	w.WriteString("_sum ") //nolint:errcheck
	writeFloat(w, h.Sum())
	w.WriteByte('\n') //nolint:errcheck
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}

// BucketCount is one cumulative bucket of a Snapshot. LE is the upper
// bound; math.Inf(1) marshals as the +Inf bucket.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders LE as a string so the +Inf bucket survives
// encoding/json, which rejects infinite floats.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return fmt.Appendf(nil, `{"le":%q,"count":%d}`, le, b.Count), nil
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == "+Inf" {
		b.LE = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(raw.LE, 64)
		if err != nil {
			return fmt.Errorf("metrics: bad bucket bound %q: %w", raw.LE, err)
		}
		b.LE = v
	}
	b.Count = raw.Count
	return nil
}

// Snapshot is a point-in-time copy of a histogram with cumulative
// bucket counts, suitable for JSON artifacts (BENCH_*.json) and merge
// arithmetic across runs.
type Snapshot struct {
	Buckets []BucketCount `json:"buckets,omitempty"`
	Sum     float64       `json:"sum"`
	Count   uint64        `json:"count"`
}

// Snapshot captures the histogram's current state. Concurrent Observe
// calls may land between the bucket loads; callers wanting an exact cut
// snapshot quiescent histograms (the simulator does).
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Buckets: make([]BucketCount, len(h.bounds)+1),
		Sum:     h.Sum(),
		Count:   h.count.Load(),
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets[i] = BucketCount{LE: b, Count: cum}
	}
	cum += h.counts[len(h.bounds)].Load()
	s.Buckets[len(h.bounds)] = BucketCount{LE: math.Inf(1), Count: cum}
	return s
}

// Merge folds other into s. Histograms must share bucket bounds; an
// empty s adopts other's bounds.
func (s *Snapshot) Merge(other Snapshot) {
	if len(s.Buckets) == 0 {
		s.Buckets = make([]BucketCount, len(other.Buckets))
		copy(s.Buckets, other.Buckets)
		s.Sum = other.Sum
		s.Count = other.Count
		return
	}
	if len(other.Buckets) == 0 {
		return
	}
	if len(other.Buckets) != len(s.Buckets) {
		panic(fmt.Sprintf("metrics: merging snapshots with %d vs %d buckets", len(other.Buckets), len(s.Buckets)))
	}
	for i := range s.Buckets {
		s.Buckets[i].Count += other.Buckets[i].Count
	}
	s.Sum += other.Sum
	s.Count += other.Count
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket that crosses the target rank, the
// standard Prometheus histogram_quantile estimator. Returns 0 for an
// empty snapshot; the +Inf bucket clamps to the highest finite bound.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	idx := sort.Search(len(s.Buckets), func(i int) bool {
		return float64(s.Buckets[i].Count) >= rank
	})
	if idx >= len(s.Buckets) {
		idx = len(s.Buckets) - 1
	}
	le := s.Buckets[idx].LE
	if math.IsInf(le, 1) {
		// Clamp to the highest finite bound.
		if idx > 0 {
			return s.Buckets[idx-1].LE
		}
		return 0
	}
	lower, prevCount := 0.0, uint64(0)
	if idx > 0 {
		lower = s.Buckets[idx-1].LE
		prevCount = s.Buckets[idx-1].Count
	}
	span := float64(s.Buckets[idx].Count - prevCount)
	if span == 0 {
		return le
	}
	return lower + (le-lower)*(rank-float64(prevCount))/span
}
