package metrics

import "testing"

// TestAllocsTraceDisabledSpan pins the disabled-path cost of the
// tracing additions: with metrics globally disabled, ending a
// trace-tagged span and observing an exemplar-carrying sample allocate
// nothing. check.sh gates on this (go test -run AllocsTrace).
func TestAllocsTraceDisabledSpan(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)

	tr := NewTracer(16)
	if n := testing.AllocsPerRun(200, func() {
		tr.StartSpanTrace("alloc.test", nil, "0af7651916cd43dd8448eb211c80319c").End(nil)
	}); n != 0 {
		t.Fatalf("disabled trace-tagged span allocates %v per op, want 0", n)
	}

	h := NewDetachedHistogram(DurationBuckets)
	if n := testing.AllocsPerRun(200, func() {
		h.ObserveExemplar(0.0042, "0af7651916cd43dd8448eb211c80319c")
	}); n != 0 {
		t.Fatalf("disabled ObserveExemplar allocates %v per op, want 0", n)
	}
}

func BenchmarkTraceDisabled(b *testing.B) {
	SetEnabled(false)
	defer SetEnabled(true)

	b.Run("span", func(b *testing.B) {
		tr := NewTracer(16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.StartSpanTrace("bench", nil, "0af7651916cd43dd8448eb211c80319c").End(nil)
		}
	})
	b.Run("exemplar", func(b *testing.B) {
		h := NewDetachedHistogram(DurationBuckets)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveExemplar(0.0042, "0af7651916cd43dd8448eb211c80319c")
		}
	})
}
