package metrics

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Health is the daemon's liveness/readiness state: healthy until a
// component reports an error, healthy again once it reports success.
// The controller feeds it from every planning cycle, so /healthz flips
// to 503 when the planner errors and recovers with the next good cycle.
type Health struct {
	mu      sync.Mutex
	healthy bool
	reason  string
	since   time.Time

	// degraded is orthogonal to healthy: the process is alive and
	// serving reads, but the durable layer rejects writes (full or
	// failing disk), so mutations are refused with 503. The daemon
	// flips it via SetDegraded/ClearDegraded.
	degraded       bool
	degradedReason string

	gauge *Gauge // optional 1/0 mirror on /metrics
}

// NewHealth returns a healthy state. gauge, when non-nil, mirrors the
// state as 1 (healthy) / 0 (unhealthy) on /metrics.
func NewHealth(gauge *Gauge) *Health {
	h := &Health{healthy: true, since: time.Now(), gauge: gauge}
	if gauge != nil {
		gauge.Set(1)
	}
	return h
}

// SetHealthy marks the state healthy.
func (h *Health) SetHealthy() {
	h.mu.Lock()
	if !h.healthy {
		h.healthy = true
		h.reason = ""
		h.since = time.Now()
	}
	h.mu.Unlock()
	if h.gauge != nil {
		h.gauge.Set(1)
	}
}

// SetError marks the state unhealthy with the error as reason. A nil
// error is equivalent to SetHealthy.
func (h *Health) SetError(err error) {
	if err == nil {
		h.SetHealthy()
		return
	}
	h.mu.Lock()
	h.healthy = false
	h.reason = err.Error()
	h.since = time.Now()
	h.mu.Unlock()
	if h.gauge != nil {
		h.gauge.Set(0)
	}
}

// Healthy reports the current state and, when unhealthy, the reason.
func (h *Health) Healthy() (bool, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.healthy, h.reason
}

// SetDegraded marks the process degraded: alive, serving reads, but
// refusing mutations.
func (h *Health) SetDegraded(reason string) {
	h.mu.Lock()
	h.degraded = true
	h.degradedReason = reason
	h.mu.Unlock()
}

// ClearDegraded returns the process to full service.
func (h *Health) ClearDegraded() {
	h.mu.Lock()
	h.degraded = false
	h.degradedReason = ""
	h.mu.Unlock()
}

// Degraded reports whether the process is in read-only degraded mode
// and, if so, why.
func (h *Health) Degraded() (bool, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded, h.degradedReason
}

// Handler serves the health state as JSON: 200 {"status":"ok"} when
// healthy, 503 {"status":"unhealthy","reason":...} when not, and 503
// {"status":"degraded","reason":...} when the process is alive but in
// read-only degraded mode — mount it at GET /healthz.
func (h *Health) Handler() http.Handler { return h.HandlerDetail(nil) }

// HandlerDetail is Handler with extra detail merged into the JSON body:
// detail, when non-nil, is invoked per request and its keys are added
// alongside the status fields (which always win on collision). The
// daemon uses it to publish per-tenant SLO state on /healthz without
// changing the liveness semantics.
func (h *Health) HandlerDetail(detail func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ok, reason := h.Healthy()
		degraded, degradedReason := h.Degraded()
		h.mu.Lock()
		since := h.since
		h.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		body := map[string]any{}
		if detail != nil {
			for k, v := range detail() {
				body[k] = v
			}
		}
		body["status"] = "ok"
		body["since"] = since.Format(time.RFC3339Nano)
		status := http.StatusOK
		switch {
		case !ok:
			body["status"] = "unhealthy"
			body["reason"] = reason
			status = http.StatusServiceUnavailable
		case degraded:
			body["status"] = "degraded"
			body["reason"] = degradedReason
			status = http.StatusServiceUnavailable
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(body) //nolint:errcheck // response committed
	})
}
