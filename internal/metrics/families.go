package metrics

// Canonical metric families of the IMCF serving path. They live here —
// not in the packages that observe them — because several layers feed
// the same family (the live controller and the trace-driven simulator
// both observe planner windows and rule outcomes), and because the
// daemon must expose every family from process start, before the first
// planning cycle runs.
//
// Naming follows Prometheus conventions: `imcf_` prefix, `_total`
// suffix on integer counters, base units in the name (seconds, kwh).
var (
	// PlannerWindowSeconds is the end-to-end latency of planning one
	// decision window: problem construction plus the EP search. The
	// controller observes one sample per cycle; the simulator one per
	// plan window.
	PlannerWindowSeconds = NewHistogram("imcf_planner_window_seconds",
		"Latency of planning one decision window (problem build + EP search).",
		DurationBuckets)

	// PlannerPlans counts planner invocations (EP searches).
	PlannerPlans = NewCounter("imcf_planner_plans_total",
		"Energy Planner invocations.")

	// PlannerIterations counts k-opt local-search iterations across all
	// planner invocations.
	PlannerIterations = NewCounter("imcf_planner_iterations_total",
		"k-opt local search iterations executed by the Energy Planner.")

	// RulesConsidered counts rule-slot pairs presented to the planning
	// layer (active meta-rules per window/cycle). Every considered rule
	// is either executed or dropped, so at all times
	// considered == executed + dropped.
	RulesConsidered = NewCounter("imcf_rules_considered_total",
		"Meta-rule decisions presented to the planner (executed + dropped).")

	// RulesExecuted counts rule decisions admitted for execution.
	RulesExecuted = NewCounter("imcf_rules_executed_total",
		"Meta-rule decisions admitted and executed.")

	// RulesDropped counts rule decisions denied (dropped by the planner
	// to hold the energy budget).
	RulesDropped = NewCounter("imcf_rules_dropped_total",
		"Meta-rule decisions dropped by the planner to hold the budget.")

	// EnergyConsumedKWh accumulates F_E: the energy consumed by executed
	// rules, in kWh.
	EnergyConsumedKWh = NewFloatCounter("imcf_energy_consumed_kwh",
		"Energy consumed by executed meta-rules (F_E), in kWh.")

	// ConvenienceErrorSum accumulates the raw convenience error of
	// dropped rule decisions (the numerator of F_CE); divide by
	// imcf_rules_considered_total for the mean normalized error.
	ConvenienceErrorSum = NewFloatCounter("imcf_convenience_error_sum",
		"Accumulated convenience error of dropped decisions (F_CE numerator).")

	// HealthyGauge mirrors the daemon's /healthz state on /metrics.
	HealthyGauge = NewGauge("imcf_healthy",
		"1 when the last planning cycle succeeded, 0 after a cycle error.")

	// TraceRequests counts HTTP requests entering trace-aware handlers,
	// split by whether the traceparent arrived from an upstream hop
	// ("propagated") or had to be minted fresh ("minted"). A healthy
	// multi-hop deployment propagates on every interior hop.
	TraceRequests = NewCounterVec("imcf_trace_requests_total",
		"Trace-aware HTTP requests, by trace origin.", "origin")
)
