package metrics

import "testing"

// TestHotPathZeroAllocs is the contract the planner hot path relies on:
// incrementing counters, setting gauges and observing histograms must
// not allocate. If any of these regresses, instrumentation starts
// taxing every plan window and the PR 1 zero-alloc planner guarantee is
// silently broken.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "c")
	f := r.FloatCounter("alloc_kwh", "f")
	g := r.Gauge("alloc_depth", "g")
	h := r.Histogram("alloc_seconds", "h", DurationBuckets)
	child := r.CounterVec("alloc_by_mode_total", "v", "mode").With("EP")

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"FloatCounter.Add", func() { f.Add(0.125) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(0.003) }},
		{"VecChild.Inc", func() { child.Inc() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestSpanZeroAllocsAfterWarmup: once the tracer ring exists, starting
// and ending a span allocates nothing (the ring slot is reused).
func TestSpanZeroAllocsAfterWarmup(t *testing.T) {
	tr := NewTracer(8)
	h := NewDetachedHistogram(nil)
	fn := func() { tr.StartSpan("hot", h).End(nil) }
	fn() // warm up
	if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
		t.Errorf("span start/end: %v allocs/op, want 0", allocs)
	}
}
