package metrics

import (
	"bufio"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func render(r *Registry) string {
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	r.WritePrometheus(w)
	w.Flush()
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
	f := r.FloatCounter("test_energy_kwh", "Energy.")
	f.Add(1.5)
	f.Add(0.25)
	f.Add(-4) // ignored: counters never decrease
	if got := f.Value(); got != 1.75 {
		t.Fatalf("float counter = %v, want 1.75", got)
	}
	g := r.Gauge("test_depth", "Depth.")
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", got)
	}

	out := render(r)
	for _, want := range []string{
		"# HELP test_requests_total Requests.",
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"# TYPE test_energy_kwh counter",
		"test_energy_kwh 1.75",
		"# TYPE test_depth gauge",
		"test_depth 6.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_requests_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "a")
	b := r.Counter("dup_total", "ignored on re-register")
	if a != b {
		t.Fatal("re-registering the same counter name must return the same collector")
	}
	h1 := r.Histogram("dup_seconds", "h", nil)
	h2 := r.Histogram("dup_seconds", "h", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("re-registering the same histogram name must return the same collector")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a histogram name as a counter must panic")
		}
	}()
	r.Counter("dup_seconds", "type clash")
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_by_mode_total", "By mode.", "mode")
	ep := v.With("EP")
	ep2 := v.With("EP")
	if ep != ep2 {
		t.Fatal("With must cache children")
	}
	ep.Add(4)
	v.With("IFTTT").Inc()
	out := render(r)
	if !strings.Contains(out, `test_by_mode_total{mode="EP"} 4`) ||
		!strings.Contains(out, `test_by_mode_total{mode="IFTTT"} 1`) {
		t.Errorf("vec exposition wrong:\n%s", out)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_served_total", "Served.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	buf := new(strings.Builder)
	if _, err := bufio.NewReader(resp.Body).WriteTo(buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_served_total 1") {
		t.Errorf("handler body:\n%s", buf.String())
	}
}

func TestSetEnabledGatesMutations(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("test_gated_total", "g")
	h := r.Histogram("test_gated_seconds", "g", nil)
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() should be false after SetEnabled(false)")
	}
	c.Inc()
	h.Observe(1)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled metrics mutated: counter=%d hist=%d", c.Value(), h.Count())
	}
	SetEnabled(true)
	c.Inc()
	h.Observe(1)
	if c.Value() != 1 || h.Count() != 1 {
		t.Fatalf("re-enabled metrics did not record: counter=%d hist=%d", c.Value(), h.Count())
	}
}

func TestTracerRingAndHandler(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		sp := tr.StartSpan("cycle", nil)
		var err error
		if i == 5 {
			err = errors.New("boom")
		}
		if d := sp.End(err); d < 0 {
			t.Fatalf("negative span duration %v", d)
		}
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring keeps %d spans, want 4", len(recent))
	}
	if recent[3].Err != "boom" {
		t.Errorf("last span error = %q, want boom", recent[3].Err)
	}
	// Oldest-first ordering.
	for i := 1; i < len(recent); i++ {
		if recent[i].Start.Before(recent[i-1].Start) {
			t.Errorf("spans out of order at %d", i)
		}
	}
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("handler returned %d spans, want 4", len(got))
	}
}

func TestSpanObservesHistogram(t *testing.T) {
	h := NewDetachedHistogram(nil)
	sp := StartSpan("timed", h)
	time.Sleep(time.Millisecond)
	sp.End(nil)
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("histogram sum = %v, want > 0", h.Sum())
	}
}

func TestHealthTransitions(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_healthy", "h")
	h := NewHealth(g)
	if ok, _ := h.Healthy(); !ok {
		t.Fatal("new health must start healthy")
	}
	if g.Value() != 1 {
		t.Fatalf("gauge = %v, want 1", g.Value())
	}

	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthy status = %d, want 200", resp.StatusCode)
	}

	h.SetError(errors.New("planner exploded"))
	if ok, reason := h.Healthy(); ok || reason != "planner exploded" {
		t.Fatalf("after SetError: ok=%v reason=%q", ok, reason)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %v, want 0", g.Value())
	}
	resp, err = srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 503 || body["reason"] != "planner exploded" {
		t.Fatalf("unhealthy response: %d %v", resp.StatusCode, body)
	}

	h.SetError(nil) // nil error means healthy
	if ok, _ := h.Healthy(); !ok {
		t.Fatal("SetError(nil) must restore health")
	}
	if g.Value() != 1 {
		t.Fatalf("gauge = %v, want 1", g.Value())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	h := NewDetachedHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	s := h.Snapshot()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal snapshot with +Inf bucket: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 3 || !math.IsInf(back.Buckets[2].LE, 1) || back.Buckets[2].Count != 3 {
		t.Fatalf("round trip mangled snapshot: %+v", back)
	}
}

func TestSnapshotMergeAndQuantile(t *testing.T) {
	a := NewDetachedHistogram([]float64{1, 2, 4})
	b := NewDetachedHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		a.Observe(v)
	}
	for _, v := range []float64{3, 8} {
		b.Observe(v)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 6 || s.Sum != 0.5+1.5+1.5+3+3+8 {
		t.Fatalf("merge: count=%d sum=%v", s.Count, s.Sum)
	}
	// Median rank 3 lands in the (1,2] bucket.
	if q := s.Quantile(0.5); q <= 1 || q > 2 {
		t.Errorf("p50 = %v, want in (1,2]", q)
	}
	// Top quantiles clamp to the highest finite bound.
	if q := s.Quantile(1); q != 4 {
		t.Errorf("p100 = %v, want clamp to 4", q)
	}
	var empty Snapshot
	if q := empty.Quantile(0.9); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	empty.Merge(s)
	if empty.Count != 6 {
		t.Errorf("merge into empty: count=%d", empty.Count)
	}
}

func TestDefaultFamiliesRegistered(t *testing.T) {
	out := render(Default())
	for _, fam := range []string{
		"imcf_planner_window_seconds_bucket",
		"imcf_planner_window_seconds_sum",
		"imcf_rules_considered_total",
		"imcf_rules_executed_total",
		"imcf_rules_dropped_total",
		"imcf_energy_consumed_kwh",
		"imcf_healthy",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("default registry missing family %s", fam)
		}
	}
}
