package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObserveExemplar(t *testing.T) {
	h := NewDetachedHistogram([]float64{0.01, 0.1, 1})

	h.ObserveExemplar(0.005, "trace-a") // bucket 0
	h.ObserveExemplar(0.05, "")         // counted, no exemplar
	h.ObserveExemplar(5, "trace-inf")   // +Inf bucket
	h.ObserveExemplar(0.007, "trace-b") // bucket 0 again, replaces trace-a

	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("Exemplars = %+v, want 2 buckets", ex)
	}
	if ex[0].LE != "0.01" || ex[0].Trace != "trace-b" || ex[0].Value != 0.007 {
		t.Fatalf("bucket 0 exemplar = %+v", ex[0])
	}
	if ex[1].LE != "+Inf" || ex[1].Trace != "trace-inf" {
		t.Fatalf("+Inf exemplar = %+v", ex[1])
	}

	// An exemplar-free histogram returns nothing.
	if got := NewDetachedHistogram(nil).Exemplars(); got != nil {
		t.Fatalf("fresh histogram Exemplars = %+v", got)
	}
}

func TestRegistryExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("imcf_test_exemplar_seconds", "test family", []float64{0.01, 1})
	r.Counter("imcf_test_plain_total", "no exemplars here")
	h.ObserveExemplar(0.002, "trace-x")

	got := r.Exemplars()
	if len(got) != 1 {
		t.Fatalf("registry exemplars = %+v", got)
	}
	if ex := got["imcf_test_exemplar_seconds"]; len(ex) != 1 || ex[0].Trace != "trace-x" {
		t.Fatalf("family exemplars = %+v", ex)
	}

	// The text exposition must stay exemplar-free: no trace ID leaks
	// onto /metrics lines (the scrape parser splits at the last space).
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	if len(body) == 0 || strings.Contains(body, "trace-x") {
		t.Fatalf("text exposition leaked exemplars:\n%s", body)
	}
}

func TestExemplarHandler(t *testing.T) {
	PlannerWindowSeconds.ObserveExemplar(0.003, "trace-handler-test")
	rr := httptest.NewRecorder()
	ExemplarHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/exemplars", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var got map[string][]Exemplar
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	found := false
	for _, ex := range got["imcf_planner_window_seconds"] {
		if ex.Trace == "trace-handler-test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exemplar missing from handler output: %+v", got)
	}
}
