// Package metrics is the observability layer of the IMCF serving path:
// a stdlib-only, race-clean metrics registry — atomic counters, gauges
// and fixed-bucket histograms with Prometheus text exposition — plus
// lightweight span-style tracing and a health state for /healthz.
//
// The paper evaluates IMCF on convenience error (F_CE), energy (F_E)
// and planner time (F_T); this package makes those same quantities
// observable on a *running* controller: every layer of the serving
// path (planner, firewall, controller, relay, client, store,
// persistence) registers `imcf_*` metric families against the Default
// registry, and the daemon exposes them at GET /metrics.
//
// Hot-path contract: Counter.Inc/Add, FloatCounter.Add, Gauge.Set and
// Histogram.Observe perform zero heap allocations and take no locks —
// only atomic operations — so instrumentation on the planner hot path
// is free when idle and race-clean under load. This is enforced by a
// testing.AllocsPerRun guard in the package tests.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// disabled gates every mutation of every metric in the process. It is
// off (metrics enabled) by default; simulation equivalence tests flip
// it to prove instrumentation does not perturb results.
var disabled atomic.Bool

// SetEnabled globally enables or disables metric mutations. Reads
// (exposition, Value) always work. The default is enabled.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether metric mutations are currently recorded.
func Enabled() bool { return !disabled.Load() }

// collector is one registered metric family.
type collector interface {
	// metricName is the family name ("imcf_rules_dropped_total").
	metricName() string
	// metricType is the Prometheus TYPE ("counter", "gauge", "histogram").
	metricType() string
	// metricHelp is the one-line HELP text.
	metricHelp() string
	// writeTo appends the family's sample lines in exposition format.
	writeTo(w *bufio.Writer)
}

// Registry holds metric families. The zero value is not usable;
// construct with NewRegistry or use Default. All methods are safe for
// concurrent use; registration is GetOrCreate — registering a name that
// already exists returns the existing collector, so independent
// packages may share a family (e.g. the controller and the simulator
// both observe imcf_planner_window_seconds).
type Registry struct {
	mu     sync.RWMutex
	byName map[string]collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]collector)}
}

// defaultRegistry is the process-wide registry behind Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the instrumented IMCF
// packages register against and that the daemon exposes at /metrics.
func Default() *Registry { return defaultRegistry }

// getOrCreate returns the collector registered under name, creating it
// with mk when absent. A name registered with a different concrete type
// panics: that is a programming error, caught at package init.
func (r *Registry) getOrCreate(name string, mk func() collector) collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.byName[name]; ok {
		return c
	}
	c := mk()
	r.byName[name] = c
	return c
}

// Counter registers (or returns the existing) integer counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := r.getOrCreate(name, func() collector { return &Counter{name: name, help: help} })
	cc, ok := c.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, c.metricType()))
	}
	return cc
}

// FloatCounter registers (or returns the existing) float counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	c := r.getOrCreate(name, func() collector { return &FloatCounter{name: name, help: help} })
	fc, ok := c.(*FloatCounter)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, c.metricType()))
	}
	return fc
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	c := r.getOrCreate(name, func() collector { return &Gauge{name: name, help: help} })
	g, ok := c.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, c.metricType()))
	}
	return g
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// buckets are ascending upper bounds; the +Inf bucket is implicit. When
// the name already exists its original buckets are kept.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	c := r.getOrCreate(name, func() collector { return newHistogram(name, help, buckets) })
	h, ok := c.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, c.metricType()))
	}
	return h
}

// CounterVec registers (or returns the existing) labelled counter
// family. Children are resolved with With at registration time, never
// on the hot path.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	c := r.getOrCreate(name, func() collector {
		return &CounterVec{name: name, help: help, labels: labels, children: make(map[string]*Counter)}
	})
	v, ok := c.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, c.metricType()))
	}
	return v
}

// GaugeVec registers (or returns the existing) labelled gauge family.
// Children are resolved with With at registration time (e.g. one child
// per storage shard), never on the hot path.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	c := r.getOrCreate(name, func() collector {
		return &GaugeVec{name: name, help: help, labels: labels, children: make(map[string]*Gauge)}
	})
	v, ok := c.(*GaugeVec)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %s", name, c.metricType()))
	}
	return v
}

// Package-level shorthands against the Default registry, used by the
// instrumented packages at var-init time.

// NewCounter registers an integer counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default().Counter(name, help) }

// NewFloatCounter registers a float counter on the Default registry.
func NewFloatCounter(name, help string) *FloatCounter { return Default().FloatCounter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default().Gauge(name, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default().Histogram(name, help, buckets)
}

// NewCounterVec registers a labelled counter family on the Default
// registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default().CounterVec(name, help, labels...)
}

// NewGaugeVec registers a labelled gauge family on the Default
// registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default().GaugeVec(name, help, labels...)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families sorted by name.
func (r *Registry) WritePrometheus(w *bufio.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	cols := make([]collector, len(names))
	for i, n := range names {
		cols[i] = r.byName[n]
	}
	r.mu.RUnlock()

	for _, c := range cols {
		fmt.Fprintf(w, "# HELP %s %s\n", c.metricName(), c.metricHelp())
		fmt.Fprintf(w, "# TYPE %s %s\n", c.metricName(), c.metricType())
		c.writeTo(w)
	}
}

// Handler returns an http.Handler serving the registry in text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		r.WritePrometheus(bw)
		bw.Flush() //nolint:errcheck // response already committed
	})
}

// Handler serves the Default registry — the daemon's GET /metrics.
func Handler() http.Handler { return Default().Handler() }

// Exemplars returns every registered histogram's bucket exemplars,
// keyed by family name; families without exemplars are omitted. The
// classic text exposition on /metrics stays exemplar-free by design —
// this is the JSON side channel behind GET /debug/exemplars.
func (r *Registry) Exemplars() map[string][]Exemplar {
	r.mu.RLock()
	hists := make(map[string]*Histogram)
	for name, c := range r.byName {
		if h, ok := c.(*Histogram); ok {
			hists[name] = h
		}
	}
	r.mu.RUnlock()

	out := make(map[string][]Exemplar)
	for name, h := range hists {
		if ex := h.Exemplars(); len(ex) > 0 {
			out[name] = ex
		}
	}
	return out
}

// ExemplarHandler serves the Default registry's histogram exemplars as
// JSON — mount it at GET /debug/exemplars.
func ExemplarHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(Default().Exemplars()) //nolint:errcheck // response committed
	})
}

// writeFloat appends a float in the canonical exposition form.
func writeFloat(w *bufio.Writer, v float64) {
	w.Write(strconv.AppendFloat(make([]byte, 0, 24), v, 'g', -1, 64)) //nolint:errcheck
}
