package metrics

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// This file is the causal-tracing substrate of the serving path: a
// W3C-style trace context minted at the outermost client, carried in
// the `traceparent` HTTP header across every hop (APP → CC relay → LC
// API → planner → firewall), and attached to the span ring and the
// decision journal so one ID reassembles a request end to end
// (DESIGN.md §10). It is deliberately not the workload-trace package
// internal/trace, which stores sensor time series.

// TraceHeader is the HTTP header carrying the trace context, per the
// W3C Trace Context specification.
const TraceHeader = "traceparent"

// Trace-origin counters, resolved to their label children at init so
// the middleware pays one atomic increment per request.
var (
	tracePropagated = TraceRequests.With("propagated")
	traceMinted     = TraceRequests.With("minted")
)

// TraceContext is one hop's view of a trace: the 16-byte trace ID
// shared by every hop of a logical request, and the 8-byte span ID of
// the current hop. The zero value is invalid.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// NewTrace mints a fresh root trace context. Trace IDs come from
// crypto/rand: minting happens at the serving path's edges (client SDK,
// HTTP middleware), never inside the deterministic core/sim replay.
func NewTrace() TraceContext {
	var tc TraceContext
	mustRand(tc.TraceID[:])
	mustRand(tc.SpanID[:])
	return tc
}

// mustRand fills b from crypto/rand; exhausting the system's entropy
// source is unrecoverable.
func mustRand(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic("metrics: crypto/rand: " + err.Error())
	}
}

// Valid reports whether the context carries a non-zero trace ID (the
// W3C validity rule).
func (t TraceContext) Valid() bool { return t.TraceID != [16]byte{} }

// Child returns the context to forward downstream: the same trace ID
// with a fresh span ID identifying the new hop.
func (t TraceContext) Child() TraceContext {
	c := TraceContext{TraceID: t.TraceID}
	mustRand(c.SpanID[:])
	return c
}

// TraceIDString returns the 32-hex-digit trace ID — the key for
// /debug/trace/<id>, span-ring tags and journal events.
func (t TraceContext) TraceIDString() string {
	return hex.EncodeToString(t.TraceID[:])
}

// Traceparent renders the context as a version-00 traceparent value:
// 00-<trace-id>-<span-id>-01 (sampled flag always set; the subsystem
// does not sample, it bounds retention instead — see DESIGN.md §10).
func (t TraceContext) Traceparent() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], t.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], t.SpanID[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version except the reserved "ff" and requires a non-zero trace ID;
// anything malformed reports false and the caller mints a fresh root.
func ParseTraceparent(s string) (TraceContext, bool) {
	var tc TraceContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	if s[0] == 'f' && s[1] == 'f' {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return TraceContext{}, false
	}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// traceCtxKey keys the trace context in a context.Context.
type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying tc; handlers and the client SDK
// read it back with TraceFrom.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom extracts the trace context carried by ctx.
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// TraceIDFrom returns the hex trace ID carried by ctx, or "" when ctx
// carries none — the form span tags, journal events and exemplars use.
func TraceIDFrom(ctx context.Context) string {
	if tc, ok := TraceFrom(ctx); ok {
		return tc.TraceIDString()
	}
	return ""
}

// InjectTrace stamps an outgoing request with the context's
// traceparent, deriving a fresh child span ID for the downstream hop.
func InjectTrace(req *http.Request, tc TraceContext) {
	req.Header.Set(TraceHeader, tc.Child().Traceparent())
}

// TraceMiddleware wraps an HTTP handler with trace propagation: the
// incoming traceparent is parsed (a fresh root is minted when absent or
// malformed), stored in the request context, echoed on the response,
// and one span named spanName, tagged with the trace ID, is recorded in
// the default tracer per request.
func TraceMiddleware(spanName string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc, ok := ParseTraceparent(r.Header.Get(TraceHeader))
		if ok {
			tracePropagated.Inc()
		} else {
			tc = NewTrace()
			traceMinted.Inc()
		}
		w.Header().Set(TraceHeader, tc.Traceparent())
		sp := StartSpanTrace(spanName, nil, tc.TraceIDString())
		next.ServeHTTP(w, r.WithContext(ContextWithTrace(r.Context(), tc)))
		sp.End(nil)
	})
}
