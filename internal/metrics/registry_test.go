package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPackageLevelShorthands exercises the Default-registry
// constructors and the package-level /metrics handler.
func TestPackageLevelShorthands(t *testing.T) {
	c := NewCounter("short_total", "c")
	if NewCounter("short_total", "again") != c {
		t.Fatal("NewCounter must dedupe on the Default registry")
	}
	NewFloatCounter("short_kwh", "f").Add(2)
	NewGauge("short_gauge", "g").Set(3)
	NewHistogram("short_seconds", "h", nil).Observe(0.1)
	NewCounterVec("short_by_kind_total", "v", "kind").With("a").Inc()
	if DefaultTracer() == nil {
		t.Fatal("DefaultTracer must exist")
	}

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{"short_total", "short_kwh 2", "short_gauge 3", `short_by_kind_total{kind="a"} 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("default handler missing %q", want)
		}
	}
}

func TestObserveDurationAlias(t *testing.T) {
	h := NewDetachedHistogram([]float64{1})
	h.ObserveDuration(0.5)
	if h.Count() != 1 || h.Sum() != 0.5 {
		t.Fatalf("ObserveDuration: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestNewHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets must panic")
		}
	}()
	NewDetachedHistogram([]float64{2, 1})
}

func TestCounterVecArityPanics(t *testing.T) {
	v := NewRegistry().CounterVec("arity_total", "v", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity must panic")
		}
	}()
	v.With("only-one")
}

func TestSnapshotUnmarshalErrors(t *testing.T) {
	var b BucketCount
	if err := json.Unmarshal([]byte(`{"le":"not-a-number","count":1}`), &b); err == nil {
		t.Fatal("bad bound must error")
	}
	if err := json.Unmarshal([]byte(`{`), &b); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestSnapshotMergeMismatchPanics(t *testing.T) {
	a := NewDetachedHistogram([]float64{1}).Snapshot()
	b := NewDetachedHistogram([]float64{1, 2}).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("bucket-count mismatch must panic")
		}
	}()
	a.Merge(b)
}

func TestQuantileClampsAndEmptyMergeNoop(t *testing.T) {
	h := NewDetachedHistogram([]float64{1, 2})
	h.Observe(0.5)
	s := h.Snapshot()
	if q := s.Quantile(-1); q < 0 {
		t.Errorf("q<0 should clamp, got %v", q)
	}
	if q := s.Quantile(2); q < 0 {
		t.Errorf("q>1 should clamp, got %v", q)
	}
	before := s.Count
	s.Merge(Snapshot{}) // merging an empty snapshot is a no-op
	if s.Count != before {
		t.Errorf("empty merge changed count: %d -> %d", before, s.Count)
	}
}
