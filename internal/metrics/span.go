package metrics

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// SpanRecord is one completed span: a named, timed section of the
// serving path (an EP cycle, a store compaction, a relay broadcast).
// Trace, when non-empty, is the hex trace ID of the causal trace the
// span belongs to (see traceid.go); /debug/trace/<id> filters on it.
type SpanRecord struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Err      string        `json:"err,omitempty"`
	Trace    string        `json:"trace,omitempty"`
}

// Tracer collects completed spans into a fixed ring — lightweight
// span-style tracing for the daemon's /debug/spans endpoint. The ring
// is allocated once at construction; recording a span after that point
// performs no heap allocations.
type Tracer struct {
	mu   sync.Mutex
	ring []SpanRecord
	at   int
	n    int
}

// NewTracer returns a tracer keeping the most recent cap spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SpanRecord, capacity)}
}

// defaultTracer backs the package-level span helpers.
var defaultTracer = NewTracer(256)

// DefaultTracer returns the process-wide tracer the instrumented
// packages record into.
func DefaultTracer() *Tracer { return defaultTracer }

// Span is an in-flight timed section. It is a value type: starting and
// ending a span allocates nothing. End may be called once.
type Span struct {
	tracer *Tracer
	hist   *Histogram
	name   string
	trace  string
	start  time.Time
}

// StartSpan opens a span on the tracer. hist, when non-nil, receives
// the span's duration in seconds at End — linking traces to the
// histogram families on /metrics.
func (t *Tracer) StartSpan(name string, hist *Histogram) Span {
	return Span{tracer: t, hist: hist, name: name, start: time.Now()}
}

// StartSpanTrace is StartSpan with a causal-trace tag: trace is the hex
// trace ID (TraceContext.TraceIDString) the completed span records, or
// "" for an untraced span.
func (t *Tracer) StartSpanTrace(name string, hist *Histogram, trace string) Span {
	return Span{tracer: t, hist: hist, name: name, trace: trace, start: time.Now()}
}

// StartSpan opens a span on the default tracer.
func StartSpan(name string, hist *Histogram) Span {
	return defaultTracer.StartSpan(name, hist)
}

// StartSpanTrace opens a trace-tagged span on the default tracer.
func StartSpanTrace(name string, hist *Histogram, trace string) Span {
	return defaultTracer.StartSpanTrace(name, hist, trace)
}

// End closes the span, records it in the tracer's ring and observes its
// duration on the linked histogram. It returns the duration. err, when
// non-nil, is recorded on the span.
//
//imcf:noalloc
func (s Span) End(err error) time.Duration {
	d := time.Since(s.start)
	if disabled.Load() {
		return d
	}
	if s.hist != nil {
		s.hist.Observe(d.Seconds())
	}
	if s.tracer != nil {
		rec := SpanRecord{Name: s.name, Start: s.start, Duration: d, Trace: s.trace}
		if err != nil {
			rec.Err = err.Error()
		}
		t := s.tracer
		t.mu.Lock()
		t.ring[t.at] = rec
		t.at = (t.at + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
		t.mu.Unlock()
	}
	return d
}

// Recent returns the recorded spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	if t.n == len(t.ring) {
		out = append(out, t.ring[t.at:]...)
		out = append(out, t.ring[:t.at]...)
	} else {
		out = append(out, t.ring[:t.n]...)
	}
	return out
}

// ByTrace returns the recorded spans tagged with the given trace ID,
// oldest first — the span half of the daemon's /debug/trace/<id> view.
func (t *Tracer) ByTrace(id string) []SpanRecord {
	if id == "" {
		return nil
	}
	var out []SpanRecord
	for _, rec := range t.Recent() {
		if rec.Trace == id {
			out = append(out, rec)
		}
	}
	return out
}

// Handler serves the tracer's recent spans as JSON — mount it at
// GET /debug/spans.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(t.Recent()) //nolint:errcheck // response committed
	})
}
