package metrics

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use; Inc and Add are lock-free and allocation-free.
type Counter struct {
	v      atomic.Uint64
	name   string
	help   string
	labels string // rendered "{k=\"v\",...}" suffix, empty for plain counters
}

// Inc adds one.
//
//imcf:noalloc
func (c *Counter) Inc() {
	if disabled.Load() {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//imcf:noalloc
func (c *Counter) Add(n uint64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) writeTo(w *bufio.Writer) {
	fmt.Fprintf(w, "%s%s %d\n", c.name, c.labels, c.v.Load())
}

// FloatCounter is a monotonically increasing float metric (e.g. energy
// in kWh). Add is a lock-free compare-and-swap loop over the float's
// bits and performs no allocations.
type FloatCounter struct {
	bits atomic.Uint64
	name string
	help string
}

// Add accumulates v. Negative deltas are ignored: the metric is a
// counter and must never decrease.
//
//imcf:noalloc
func (c *FloatCounter) Add(v float64) {
	if v < 0 || disabled.Load() {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *FloatCounter) metricName() string { return c.name }
func (c *FloatCounter) metricType() string { return "counter" }
func (c *FloatCounter) metricHelp() string { return c.help }
func (c *FloatCounter) writeTo(w *bufio.Writer) {
	w.WriteString(c.name) //nolint:errcheck
	w.WriteByte(' ')      //nolint:errcheck
	writeFloat(w, c.Value())
	w.WriteByte('\n') //nolint:errcheck
}

// Gauge is a float metric that can go up and down (queue depths,
// health, carry-over budget). Set and Add are lock-free and
// allocation-free.
type Gauge struct {
	bits   atomic.Uint64
	name   string
	help   string
	labels string // rendered "{k=\"v\",...}" suffix, empty for plain gauges
}

// Set replaces the gauge's value.
//
//imcf:noalloc
func (g *Gauge) Set(v float64) {
	if disabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (which may be negative).
//
//imcf:noalloc
func (g *Gauge) Add(delta float64) {
	if disabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) writeTo(w *bufio.Writer) {
	w.WriteString(g.name)   //nolint:errcheck
	w.WriteString(g.labels) //nolint:errcheck
	w.WriteByte(' ')        //nolint:errcheck
	writeFloat(w, g.Value())
	w.WriteByte('\n') //nolint:errcheck
}

// CounterVec is a family of counters distinguished by label values.
// Children are resolved with With — which takes a lock and may allocate
// — so callers resolve once at init time and keep the *Counter; the
// per-observation path is then identical to a plain Counter.
type CounterVec struct {
	name   string
	help   string
	labels []string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (one per
// label name, in registration order). Children persist for the life of
// the vec.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c := &Counter{name: v.name, help: v.help, labels: renderLabels(v.labels, values)}
	v.children[key] = c
	return c
}

// GaugeVec is a family of gauges distinguished by label values. Like
// CounterVec, With takes a lock and may allocate, so callers resolve
// children once (e.g. one gauge per storage shard at open time) and
// keep the *Gauge; the per-observation path is then identical to a
// plain Gauge.
type GaugeVec struct {
	name   string
	help   string
	labels []string

	mu       sync.Mutex
	children map[string]*Gauge
}

// With returns the child gauge for the given label values (one per
// label name, in registration order). Children persist for the life of
// the vec.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[key]; ok {
		return g
	}
	g := &Gauge{name: v.name, help: v.help, labels: renderLabels(v.labels, values)}
	v.children[key] = g
	return g
}

func (v *GaugeVec) metricName() string { return v.name }
func (v *GaugeVec) metricType() string { return "gauge" }
func (v *GaugeVec) metricHelp() string { return v.help }
func (v *GaugeVec) writeTo(w *bufio.Writer) {
	v.mu.Lock()
	children := make([]*Gauge, 0, len(v.children))
	for _, g := range v.children {
		children = append(children, g)
	}
	v.mu.Unlock()
	sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })
	for _, g := range children {
		g.writeTo(w)
	}
}

// renderLabels builds the exposition-format label suffix {k="v",...}.
func renderLabels(names, values []string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, ln := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(ln)
		sb.WriteString(`=`)
		sb.WriteString(strconv.Quote(values[i]))
	}
	sb.WriteByte('}')
	return sb.String()
}

func (v *CounterVec) metricName() string { return v.name }
func (v *CounterVec) metricType() string { return "counter" }
func (v *CounterVec) metricHelp() string { return v.help }
func (v *CounterVec) writeTo(w *bufio.Writer) {
	v.mu.Lock()
	children := make([]*Counter, 0, len(v.children))
	for _, c := range v.children {
		children = append(children, c)
	}
	v.mu.Unlock()
	sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })
	for _, c := range children {
		c.writeTo(w)
	}
}
