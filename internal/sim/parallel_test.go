package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/metrics"
)

// TestBuildWorkloadParallelEquivalence asserts the sharded precompute
// fill produces exactly the sequential fill's data.
func TestBuildWorkloadParallelEquivalence(t *testing.T) {
	res := oneYearFlat(t)
	seq, err := BuildWorkload(res, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildWorkload(res, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.ambient, par.ambient) {
		t.Error("parallel ambient precompute differs from sequential")
	}
	if !reflect.DeepEqual(seq.envs, par.envs) {
		t.Error("parallel env precompute differs from sequential")
	}
}

// TestRunPipelineMatchesSequential is the determinism contract of the
// prefetch pipeline: for every algorithm, Run with a producer pool must
// produce a byte-identical Result (modulo wall-clock F_T) to the fully
// sequential fallback at the same seed.
func TestRunPipelineMatchesSequential(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	cases := []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"weekly-window", Options{PlanWindowHours: 7 * 24}},
		{"odd-window", Options{PlanWindowHours: 7}},
		{"no-ledger", Options{NoCarryOver: true}},
		{"savings", Options{Savings: 0.3}},
	}
	for _, alg := range []Algorithm{NR, IFTTT, EP, MR} {
		for _, tc := range cases {
			if alg != EP && tc.name != "default" {
				continue // baselines are window- and ledger-invariant
			}
			seqOpts := tc.opts
			seqOpts.Workers = 1
			seqOpts.Planner.Seed = 1234
			parOpts := tc.opts
			parOpts.Workers = 8
			parOpts.Planner.Seed = 1234

			seq, err := Run(w, alg, seqOpts)
			if err != nil {
				t.Fatalf("%v/%s sequential: %v", alg, tc.name, err)
			}
			par, err := Run(w, alg, parOpts)
			if err != nil {
				t.Fatalf("%v/%s parallel: %v", alg, tc.name, err)
			}
			// F_T and the latency histogram are wall-clock and
			// legitimately differ between runs.
			seq.PlannerTime, par.PlannerTime = 0, 0
			seq.PlanLatency, par.PlanLatency = metrics.Snapshot{}, metrics.Snapshot{}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%v/%s: parallel Run diverged from sequential:\nseq: %+v\npar: %+v", alg, tc.name, seq, par)
			}
		}
	}
}

// TestRunPipelineErrorPropagates ensures a planner error inside the
// sequential consumer loop tears the pipeline down cleanly — producers
// exit, no deadlock — and surfaces the error.
func TestRunPipelineErrorPropagates(t *testing.T) {
	res := oneYearFlat(t)
	// Inflate the MRT until more than ExhaustiveMaxN convenience rules
	// are active per daily window (the flat template is 4 convenience +
	// 2 necessity rules), so the exhaustive engine fails inside the
	// consumer on the first window.
	base := res.MRT.Rules
	for copyNo := 0; len(res.MRT.Rules) <= 40; copyNo++ {
		for _, r := range base {
			r.ID = fmt.Sprintf("%s/dup%d", r.ID, copyNo)
			res.MRT.Rules = append(res.MRT.Rules, r)
		}
	}
	w := buildWorkload(t, res)
	if w.RuleCount() <= core.ExhaustiveMaxN {
		t.Fatalf("test premise broken: %d convenience rules ≤ ExhaustiveMaxN", w.RuleCount())
	}
	opts := Options{Workers: 4}
	opts.Planner.Heuristic = core.Exhaustive
	done := make(chan error, 1)
	go func() {
		_, err := Run(w, EP, opts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("oversized exhaustive window did not error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline deadlocked on consumer error")
	}
}
