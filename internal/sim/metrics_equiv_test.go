package sim

import (
	"testing"

	"github.com/imcf/imcf/internal/metrics"
)

// TestMetricsDoNotPerturbResults is the observer-effect contract of the
// instrumentation: a parallel run with metrics enabled must produce
// bit-identical F_CE and F_E (and all other replay-derived outputs) to
// a fully sequential run with metrics globally disabled. Counters and
// histograms only observe the replay; they never feed back into it.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	for _, alg := range []Algorithm{NR, IFTTT, EP, MR} {
		offOpts := Options{Workers: 1}
		offOpts.Planner.Seed = 99
		metrics.SetEnabled(false)
		off, err := Run(w, alg, offOpts)
		metrics.SetEnabled(true)
		if err != nil {
			t.Fatalf("%v disabled: %v", alg, err)
		}

		onOpts := Options{Workers: 8}
		onOpts.Planner.Seed = 99
		on, err := Run(w, alg, onOpts)
		if err != nil {
			t.Fatalf("%v enabled: %v", alg, err)
		}

		if on.ConvenienceError != off.ConvenienceError {
			t.Errorf("%v: F_CE %v (metrics on, parallel) != %v (metrics off, sequential)",
				alg, on.ConvenienceError, off.ConvenienceError)
		}
		if on.Energy != off.Energy {
			t.Errorf("%v: F_E %v (metrics on, parallel) != %v (metrics off, sequential)",
				alg, on.Energy, off.Energy)
		}
		if on.ActiveRuleSlots != off.ActiveRuleSlots || on.ExecutedRuleSlots != off.ExecutedRuleSlots {
			t.Errorf("%v: rule-slot accounting diverged: on %d/%d, off %d/%d",
				alg, on.ExecutedRuleSlots, on.ActiveRuleSlots, off.ExecutedRuleSlots, off.ActiveRuleSlots)
		}

		// The disabled run's local histogram must have observed nothing;
		// the enabled run must have a sample per planner invocation.
		if off.PlanLatency.Count != 0 {
			t.Errorf("%v: disabled run recorded %d latency samples", alg, off.PlanLatency.Count)
		}
		if on.PlanLatency.Count == 0 {
			t.Errorf("%v: enabled run recorded no latency samples", alg)
		}
	}
}
