package sim

import (
	"math"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/trace"
	"github.com/imcf/imcf/internal/weather"
)

// TestReplayFromStoredDataset runs the same flat experiment twice — once
// on the direct synthetic ambient model and once replaying a generated
// on-disk dataset — and requires near-identical planner outcomes. This
// is the paper's methodology in miniature: record once, replay
// repeatably through the simulator.
func TestReplayFromStoredDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation skipped in -short mode")
	}
	synthetic := oneYearFlat(t)
	wSynthetic := buildWorkload(t, synthetic)

	// Generate the same zone's readings to disk over the same year.
	dir := t.TempDir()
	wx := weather.MustNew(42, weather.Nicosia())
	zone := trace.DefaultZone(42)
	zone.TempOffset = 2.5
	zone.TempCoupling = 0.85
	from := DefaultStart
	m, err := trace.GenerateDataset(dir, wx, trace.DatasetSpec{
		Name:  "flat-replay",
		Seed:  42,
		Zones: []trace.ZoneModel{zone},
		From:  from,
		To:    from.AddDate(1, 0, 0),
		// Coarser than the CASAS cadence to keep the test quick;
		// hourly means still converge.
		TempInterval:  4 * time.Minute,
		LightInterval: 4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dataset: %d readings", m.Records)

	// A flat whose zone replays the stored dataset.
	stored := oneYearFlat(t)
	ds, err := trace.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ds.Ambient(0, stored.Zones[0].Ambient)
	if err != nil {
		t.Fatal(err)
	}
	stored.Zones[0].Ambient = src
	wStored, err := BuildWorkload(stored, Options{})
	if err != nil {
		t.Fatal(err)
	}

	opts := Options{}
	opts.Planner.Seed = 7
	direct, err := Run(wSynthetic, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Run(wStored, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("direct:   F_E=%.1f F_CE=%.2f%%", direct.Energy.KWh(), float64(direct.ConvenienceError))
	t.Logf("replayed: F_E=%.1f F_CE=%.2f%%", replayed.Energy.KWh(), float64(replayed.ConvenienceError))

	if d := math.Abs(direct.Energy.KWh() - replayed.Energy.KWh()); d > direct.Energy.KWh()*0.03 {
		t.Errorf("replayed energy diverges by %.1f kWh", d)
	}
	if d := math.Abs(float64(direct.ConvenienceError) - float64(replayed.ConvenienceError)); d > 0.8 {
		t.Errorf("replayed error diverges by %.2f pp", d)
	}
}
