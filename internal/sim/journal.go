package sim

import (
	"time"

	"github.com/imcf/imcf/internal/journal"
)

// simRecorder adapts the planner's index-based DecisionRecorder
// callbacks into journal events during an EP replay: problem index i
// names the i-th planned entry of the window the consume loop has bound.
// Recording is strictly read-only with respect to the replay — it runs
// after each window's plan is final, from the sequential consume
// goroutine, and touches neither the ledger nor the planner RNG, so
// results are bit-identical with and without a journal (pinned by
// TestRunEPJournalDoesNotPerturbResults).
type simRecorder struct {
	j      *journal.Journal
	w      *Workload
	wp     *windowProblem
	slot   time.Time
	window int
}

// bind points the recorder at the window about to be planned.
//
//imcf:noalloc
func (sr *simRecorder) bind(wp *windowProblem, slot time.Time, window int) {
	sr.wp, sr.slot, sr.window = wp, slot, window
}

// RecordDecision implements core.DecisionRecorder. Flip* sentinels pass
// through numerically (core and journal declare identical values).
func (sr *simRecorder) RecordDecision(i int, executed bool, flipIter int, rem, energy, fce float64) {
	wr := &sr.wp.present[sr.wp.planned[i]]
	rs := &sr.w.ruleList[wr.ri]
	v := journal.VerdictDropped
	if executed {
		v = journal.VerdictExecuted
	}
	sr.j.Append(journal.Event{
		Slot:           sr.slot,
		Window:         sr.window,
		Rule:           rs.rule.ID,
		Owner:          rs.owner,
		Verdict:        v,
		EpRemainingKWh: rem,
		EnergyKWh:      energy,
		FCEDelta:       fce,
		FlipIter:       flipIter,
	})
}
