package sim

import (
	"testing"

	"github.com/imcf/imcf/internal/journal"
)

// TestRunEPJournalDoesNotPerturbResults pins the journal's read-only
// contract: the same EP replay with and without a journal — sequential
// and pipelined — produces bit-identical ledger hashes. Journaling
// happens after each window's plan is final, from the sequential
// consume loop, so it must not move a single bit of the result.
func TestRunEPJournalDoesNotPerturbResults(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	var hashes []uint64
	for _, withJournal := range []bool{false, true, true} {
		for _, workers := range []int{1, 8} {
			opts := Options{Workers: workers}
			opts.Planner.Seed = 42
			if withJournal {
				opts.Journal = journal.New(1 << 16)
			}
			res, err := Run(w, EP, opts)
			if err != nil {
				t.Fatalf("journal=%v workers=%d: %v", withJournal, workers, err)
			}
			hashes = append(hashes, resultLedgerHash(t, res))
			if withJournal && opts.Journal.Len() == 0 {
				t.Fatalf("journal=%v workers=%d: no events recorded", withJournal, workers)
			}
		}
	}
	for i := 1; i < len(hashes); i++ {
		if hashes[i] != hashes[0] {
			t.Errorf("run %d hash %#x != run 0 hash %#x — journaling perturbed the replay", i, hashes[i], hashes[0])
		}
	}
}

// TestRunEPJournalEventContent checks the events the replay emits: one
// per (window, present convenience rule), slots on the grid, windows
// increasing, provenance fields populated.
func TestRunEPJournalEventContent(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	j := journal.New(1 << 16)
	opts := Options{Workers: 1, Journal: j}
	opts.Planner.Seed = 42
	res, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}

	evs := j.Recent(journal.Filter{})
	if len(evs) == 0 {
		t.Fatal("no journal events")
	}
	executed := 0
	lastWindow := -1
	for _, ev := range evs {
		if ev.Rule == "" {
			t.Fatalf("event without rule ID: %+v", ev)
		}
		if ev.Window < lastWindow {
			t.Fatalf("window ordinals regressed: %d after %d", ev.Window, lastWindow)
		}
		lastWindow = ev.Window
		if _, ok := w.Grid.SlotAt(ev.Slot); !ok {
			t.Fatalf("event slot %v off the replay grid", ev.Slot)
		}
		if ev.FlipIter < journal.FlipRepair {
			t.Fatalf("flip iter %d below sentinels: %+v", ev.FlipIter, ev)
		}
		if ev.Verdict == journal.VerdictExecuted {
			executed++
			if ev.FCEDelta != 0 {
				t.Fatalf("executed event with FCEDelta %v", ev.FCEDelta)
			}
		} else if ev.FCEDelta < 0 {
			// Zero is legitimate: zero-gain rules drop without error.
			t.Fatalf("dropped event with negative FCEDelta: %+v", ev)
		}
		if ev.EnergyKWh <= 0 {
			t.Fatalf("event with non-positive energy: %+v", ev)
		}
	}
	if executed == 0 || executed == len(evs) {
		t.Fatalf("degenerate verdict mix: %d executed of %d (F_CE %v)", executed, len(evs), res.ConvenienceError)
	}
}

// TestRunBaselinesIgnoreJournal pins that NR/IFTTT/MR runs make no
// planner decisions and therefore record nothing.
func TestRunBaselinesIgnoreJournal(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	for _, alg := range []Algorithm{NR, IFTTT, MR} {
		j := journal.New(64)
		opts := Options{Workers: 1, Journal: j}
		if _, err := Run(w, alg, opts); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if j.Len() != 0 {
			t.Errorf("%v recorded %d journal events", alg, j.Len())
		}
	}
}
