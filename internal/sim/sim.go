// Package sim is the trace-driven simulation harness of the IMCF
// reproduction: it replays a residence's ambient traces through one of
// the compared algorithms — NR, IFTTT, EP or MR — over the evaluation
// period and reports the paper's metrics: Convenience Error (F_CE),
// Energy Consumption (F_E) and planner CPU time (F_T).
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/units"
)

// Algorithm identifies one of the compared methods.
type Algorithm int

// The four compared methods of the paper's Fig. 6.
const (
	NR Algorithm = iota + 1
	IFTTT
	EP
	MR
)

// String returns the method acronym.
func (a Algorithm) String() string {
	switch a {
	case NR:
		return "NR"
	case IFTTT:
		return "IFTTT"
	case EP:
		return "EP"
	case MR:
		return "MR"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// DefaultStart is the beginning of the CASAS trace period the paper
// replays (October 2013).
var DefaultStart = time.Date(2013, time.October, 1, 0, 0, 0, 0, time.UTC)

// Options configures a simulation run.
type Options struct {
	// Start is the first slot's instant; zero means DefaultStart.
	Start time.Time
	// Planner configures EP; ignored by the baselines.
	Planner core.Config
	// Formula selects the amortization plan; zero means EAF.
	Formula ecp.Formula
	// SaveMonths and SaveFraction configure BLAF when selected.
	SaveFraction float64
	SaveMonths   [12]bool
	// Savings scales the total budget down by the given fraction
	// (Fig. 9's energy-conservation sweep): budget × (1 − Savings).
	Savings float64
	// ErrorModel overrides the convenience-error model; zero value
	// means rules.DefaultErrorModel.
	ErrorModel rules.ErrorModel
	// NoCarryOver disables the net-metering ledger that rolls unspent
	// slot budget forward. The ledger is on by default: the paper's
	// amortization story is explicitly net-metering ("energy excess on
	// a sunny day can be used at later stages within a yearly cycle"),
	// and without it no hourly budget in a low-ECP month could afford
	// a single split-unit hour. The ablation bench exercises both.
	NoCarryOver bool
	// CarryCapHours bounds the ledger to this many mean-budget hours
	// (a rollover allowance, not a season-scale battery). Zero means
	// DefaultCarryCapHours; ablations may pass very large values to
	// approximate an unbounded ledger.
	CarryCapHours float64
	// PlanWindowHours is the EP decision granularity: the planner runs
	// once per window and its solution vector holds one bit per
	// meta-rule for the whole window, exactly the paper's s = ⟨s_1…s_N⟩
	// over the MRT (Fig. 4). Zero means DefaultPlanWindowHours (daily).
	// 1 gives per-slot decisions (an ablation). Baselines are
	// window-invariant.
	PlanWindowHours int
	// Workers bounds the worker pool used for the parallel parts of the
	// replay: the per-slot precompute in BuildWorkload and the
	// window-problem prefetch pipeline in Run. Zero means GOMAXPROCS; 1
	// forces the fully sequential fallback path. Results are
	// bit-identical for any value — only wall-clock changes.
	Workers int
	// Journal, when set, records one decision-provenance event per rule
	// verdict per EP plan window (see internal/journal). Events are
	// appended from the sequential consume loop after each window's plan
	// is final, so journaling cannot perturb results; baselines ignore
	// it (they make no planner decisions).
	Journal *journal.Journal
}

// DefaultPlanWindowHours is the default EP decision window: one day.
const DefaultPlanWindowHours = 24

// DefaultCarryCapHours is the default ledger bound: three days of mean
// hourly budget.
const DefaultCarryCapHours = 72

func (o Options) withDefaults() Options {
	if o.Start.IsZero() {
		o.Start = DefaultStart
	}
	if o.Planner.K == 0 {
		o.Planner.K = core.DefaultConfig().K
	}
	if o.Planner.Init == 0 {
		o.Planner.Init = core.DefaultConfig().Init
	}
	// Planner.MaxIter zero means auto-scale: Run sets τ_max from the
	// rule count so the local search is meaningful at every dataset
	// scale (6 rules in the flat, 600 in the dorms).
	if o.Formula == 0 {
		o.Formula = ecp.EAF
	}
	if o.ErrorModel == (rules.ErrorModel{}) {
		o.ErrorModel = rules.DefaultErrorModel()
	}
	if o.CarryCapHours == 0 {
		o.CarryCapHours = DefaultCarryCapHours
	}
	if o.PlanWindowHours == 0 {
		o.PlanWindowHours = DefaultPlanWindowHours
	}
	return o
}

// workers resolves the effective worker count: Options.Workers, or
// GOMAXPROCS when unset.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one run's outcome.
type Result struct {
	Algorithm Algorithm
	Dataset   string
	// Energy is F_E: total energy consumed over the period.
	Energy units.Energy
	// ConvenienceError is F_CE: the mean normalized error over all
	// active rule-slot pairs, as a percentage.
	ConvenienceError units.Percent
	// PlannerTime is F_T: CPU time spent inside the planning
	// algorithm (problem construction + search; not trace replay).
	PlannerTime time.Duration
	// Slots is the number of simulated hourly slots.
	Slots int
	// ActiveRuleSlots counts (rule, slot) pairs where the rule's
	// window was active; ExecutedRuleSlots of those executed.
	ActiveRuleSlots   int64
	ExecutedRuleSlots int64
	// BudgetTotal is the period budget EP planned against.
	BudgetTotal units.Energy
	// PerOwner attributes convenience error to rule owners (Table V).
	PerOwner map[string]units.Percent
	// PlanLatency is the distribution of per-invocation planning
	// latencies (per window for EP, per slot for the baselines),
	// captured in a run-local histogram. Empty when metrics are
	// globally disabled via metrics.SetEnabled(false).
	PlanLatency metrics.Snapshot
}

// Workload is a residence's precomputed replay data: per-slot ambient
// conditions and environments, shared by all algorithm runs so that
// NR/IFTTT/EP/MR comparisons see identical traces.
type Workload struct {
	Residence *home.Residence
	Grid      *simclock.Grid
	Model     rules.ErrorModel

	ruleList []ruleStatic
	byHour   [24][]int // rule indices active at each hour of day

	// ambient[zone][slot] holds (temperature, light).
	ambient [][][2]float32
	envs    []rules.Env
}

type ruleStatic struct {
	rule      rules.MetaRule
	energyKWh float64 // e_j for one hourly slot
	zone      int
	isTemp    bool
	desired   float64
	owner     string
	necessity bool
}

// RuleCount returns the number of convenience meta-rules in the
// workload, which control studies use to size the search budget.
func (w *Workload) RuleCount() int { return len(w.ruleList) }

// BuildWorkload precomputes the replay data for a residence.
func BuildWorkload(res *home.Residence, opts Options) (*Workload, error) {
	if res == nil {
		return nil, errors.New("sim: nil residence")
	}
	if err := res.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.ErrorModel.Validate(); err != nil {
		return nil, err
	}
	end := opts.Start.AddDate(res.Years, 0, 0)
	grid, err := simclock.GridOver(opts.Start, end, time.Hour)
	if err != nil {
		return nil, err
	}

	w := &Workload{Residence: res, Grid: grid, Model: opts.ErrorModel}
	for _, r := range res.MRT.Convenience() {
		dev, err := res.RuleDevice(r)
		if err != nil {
			return nil, err
		}
		rs := ruleStatic{
			rule:      r,
			energyKWh: dev.EnergyPerSlot(time.Hour).KWh(),
			zone:      r.Zone,
			isTemp:    r.Action == rules.ActionSetTemperature,
			desired:   r.Value,
			owner:     r.Owner,
			necessity: r.Necessity,
		}
		idx := len(w.ruleList)
		w.ruleList = append(w.ruleList, rs)
		for h := 0; h < 24; h++ {
			if r.ActiveAt(h) {
				w.byHour[h] = append(w.byHour[h], idx)
			}
		}
	}

	// Precompute ambient per zone per slot and the IFTTT environment per
	// slot. Every slot is independent — the ambient and weather models
	// are pure functions of the instant — so the fill is sharded over a
	// bounded worker pool; each worker owns a disjoint slot range, which
	// keeps the result bit-identical to a sequential fill.
	n := grid.Len()
	w.ambient = make([][][2]float32, len(res.Zones))
	for z := range res.Zones {
		w.ambient[z] = make([][2]float32, n)
	}
	w.envs = make([]rules.Env, n)

	workers := opts.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelSlots {
		w.fillSlots(0, n)
		return w, nil
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			w.fillSlots(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return w, nil
}

// minParallelSlots is the grid size below which sharding the precompute
// costs more than it saves.
const minParallelSlots = 512

// fillSlots computes the ambient and environment precompute for the slot
// range [lo, hi). Ranges are disjoint across workers.
//
//imcf:noalloc
func (w *Workload) fillSlots(lo, hi int) {
	res := w.Residence
	for i := lo; i < hi; i++ {
		slot := w.Grid.Slot(i)
		for z, zone := range res.Zones {
			a := zone.Ambient.AmbientAt(slot.Start)
			w.ambient[z][i] = [2]float32{float32(a.Temperature), float32(a.Light)}
		}
		obs := res.Weather.At(slot.Start.Add(30 * time.Minute))
		w.envs[i] = rules.Env{
			Season:      obs.Season,
			Condition:   obs.Condition,
			OutdoorTemp: obs.Temperature.Celsius(),
			Light:       float64(w.ambient[0][i][1]),
			DoorOpen:    doorOpen(res.Name, slot),
		}
	}
}

// doorOpen deterministically marks some waking-hour slots as having the
// door open, standing in for the CASAS door/window sensor stream.
//
//imcf:noalloc
func doorOpen(name string, slot simclock.Slot) bool {
	h := slot.HourOfDay()
	if h < 7 || h > 21 {
		return false
	}
	x := uint64(slot.Start.Unix()/3600) * 0x9E3779B97F4A7C15
	for _, c := range name {
		x ^= uint64(c) * 0xBF58476D1CE4E5B9
	}
	x ^= x >> 33
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 33
	return x%100 < 22 // ≈ a fifth of waking hours see a door event
}

// dropError returns ce for ignoring rule r during slot i: the deviation
// between the desired output and the ambient value.
//
//imcf:noalloc
func (w *Workload) dropError(r *ruleStatic, i int) float64 {
	amb := w.ambient[r.zone][i]
	if r.isTemp {
		return w.Model.Error(rules.ActionSetTemperature, r.desired, float64(amb[0]))
	}
	return w.Model.Error(rules.ActionSetLight, r.desired, float64(amb[1]))
}

// Run replays the workload through an algorithm.
func Run(w *Workload, alg Algorithm, opts Options) (Result, error) {
	opts = opts.withDefaults()
	res := Result{
		Algorithm: alg,
		Dataset:   w.Residence.Name,
		Slots:     w.Grid.Len(),
		PerOwner:  make(map[string]units.Percent),
	}

	plan := ecp.Plan{
		Formula:      opts.Formula,
		Profile:      w.Residence.Profile,
		Budget:       units.Energy(w.Residence.Budget.KWh() * (1 - opts.Savings)),
		Years:        w.Residence.Years,
		SaveFraction: opts.SaveFraction,
		SaveMonths:   opts.SaveMonths,
	}
	if opts.Savings < 0 || opts.Savings >= 1 {
		return res, fmt.Errorf("sim: savings fraction %v outside [0,1)", opts.Savings)
	}
	if err := plan.Validate(); err != nil {
		return res, err
	}
	res.BudgetTotal = plan.TotalBudget()

	// Hourly budgets per month, precomputed.
	var hourlyBudget [13]float64
	for m := time.January; m <= time.December; m++ {
		b, err := plan.HourlyBudget(m)
		if err != nil {
			return res, err
		}
		hourlyBudget[m] = b.KWh()
	}
	if opts.CarryCapHours < 0 {
		return res, fmt.Errorf("sim: negative carry cap %v", opts.CarryCapHours)
	}
	if opts.PlanWindowHours < 1 {
		return res, fmt.Errorf("sim: plan window %d must be ≥ 1 hour", opts.PlanWindowHours)
	}
	meanHourly := plan.TotalBudget().KWh() / float64(w.Residence.Years*ecp.HoursPerYear)
	carryCap := meanHourly * opts.CarryCapHours

	var planner *core.Planner
	if alg == EP {
		if opts.Planner.MaxIter == 0 {
			opts.Planner.MaxIter = autoMaxIter(len(w.ruleList))
		}
		var err error
		planner, err = core.NewPlanner(opts.Planner)
		if err != nil {
			return res, err
		}
	}

	acc := &runAccumulator{
		ownerErr:    make(map[string]float64),
		ownerActive: make(map[string]int64),
		latency:     metrics.NewDetachedHistogram(nil),
	}
	var err error
	if alg == EP {
		err = w.runEP(planner, opts, hourlyBudget, carryCap, acc)
	} else {
		err = w.runPerSlot(alg, acc)
	}
	if err != nil {
		return res, err
	}

	res.Energy = units.Energy(acc.totalEnergy)
	res.PlannerTime = acc.plannerTime
	res.ActiveRuleSlots = acc.active
	res.ExecutedRuleSlots = acc.executed
	res.PlanLatency = acc.latency.Snapshot()

	// Fold the run into the process-wide serving metrics. Done once per
	// run, after the replay, so instrumentation never touches the
	// (possibly pipelined) hot loops and cannot perturb results.
	metrics.RulesConsidered.Add(uint64(acc.active))
	metrics.RulesExecuted.Add(uint64(acc.executed))
	metrics.RulesDropped.Add(uint64(acc.active - acc.executed))
	metrics.EnergyConsumedKWh.Add(acc.totalEnergy)
	metrics.ConvenienceErrorSum.Add(acc.totalError)
	if acc.active > 0 {
		res.ConvenienceError = units.FromFraction(acc.totalError / float64(acc.active))
	}
	for owner, sum := range acc.ownerErr {
		if acc.ownerActive[owner] > 0 {
			res.PerOwner[owner] = units.FromFraction(sum / float64(acc.ownerActive[owner]))
		}
	}
	return res, nil
}

// autoMaxIter scales τ_max with the number of meta-rules so the local
// search is near-convergent — but not exhaustively converged — at every
// dataset scale, which is the regime where the paper's k-opt and
// initialization effects (Figs. 7–8) are visible.
func autoMaxIter(rules int) int {
	iter := 10 * rules
	if iter < 50 {
		return 50
	}
	if iter > 4000 {
		return 4000
	}
	return iter
}

// runAccumulator gathers metrics across the replay loops.
type runAccumulator struct {
	totalEnergy float64
	totalError  float64
	active      int64
	executed    int64
	ownerErr    map[string]float64
	ownerActive map[string]int64
	plannerTime time.Duration
	latency     *metrics.Histogram // run-local, detached from the registry
}

// winRule is one rule's trace-derived aggregate over a decision window.
type winRule struct {
	ri      int // index into Workload.ruleList
	slots   int64
	energy  float64
	dropErr float64
}

// windowProblem is one EP decision window's planning input. Everything
// in it depends only on the trace — never on the net-metering ledger —
// which is what makes windows buildable ahead of the strictly
// sequential ledger/search loop.
type windowProblem struct {
	w0, wEnd   int
	hourBudget float64   // Σ amortized slot budgets over the window
	necessity  float64   // energy committed to necessity rules
	present    []winRule // active rules, in first-occurrence order
	// planned indexes the present entries that compete for budget;
	// costs is the planner input aligned with planned.
	planned   []int
	costs     []core.RuleCost
	buildTime time.Duration
}

// winScratch is one window builder's dense per-rule accumulation
// scratch, reused across the windows the builder owns.
type winScratch struct {
	energy  []float64
	dropErr []float64
	slots   []int64
	order   []int
}

func newWinScratch(nRules int) *winScratch {
	return &winScratch{
		energy:  make([]float64, nRules),
		dropErr: make([]float64, nRules),
		slots:   make([]int64, nRules),
		order:   make([]int, 0, nRules),
	}
}

// buildWindow aggregates the window [w0, wEnd) into wp. Both the
// sequential fallback and the prefetch producers run exactly this code,
// with identical float accumulation order, so the two paths are
// bit-identical by construction.
//
//imcf:noalloc
func (w *Workload) buildWindow(wp *windowProblem, scr *winScratch, hourlyBudget *[13]float64, w0, wEnd int) {
	//imcf:allow determinism wall-clock build latency feeds metrics only, never simulation results
	start := time.Now()
	wp.w0, wp.wEnd = w0, wEnd
	wp.hourBudget, wp.necessity = 0, 0
	wp.present = wp.present[:0]
	wp.planned = wp.planned[:0]
	wp.costs = wp.costs[:0]

	order := scr.order[:0]
	for i := w0; i < wEnd; i++ {
		slot := w.Grid.Slot(i)
		wp.hourBudget += hourlyBudget[slot.Month()]
		for _, ri := range w.byHour[slot.HourOfDay()] {
			if scr.slots[ri] == 0 {
				order = append(order, ri)
			}
			r := &w.ruleList[ri]
			scr.slots[ri]++
			scr.energy[ri] += r.energyKWh
			scr.dropErr[ri] += w.dropError(r, i)
		}
	}
	scr.order = order

	// Necessity rules execute unconditionally: their energy is committed
	// before the convenience rules compete for what is left of the
	// window budget.
	for _, ri := range order {
		wr := winRule{ri: ri, slots: scr.slots[ri], energy: scr.energy[ri], dropErr: scr.dropErr[ri]}
		if w.ruleList[ri].necessity {
			wp.necessity += wr.energy
		} else {
			wp.planned = append(wp.planned, len(wp.present))
			wp.costs = append(wp.costs, core.RuleCost{DropError: wr.dropErr, Energy: wr.energy})
		}
		wp.present = append(wp.present, wr)
		// Reset dense scratch for the builder's next window.
		scr.energy[ri], scr.dropErr[ri], scr.slots[ri] = 0, 0, 0
	}
	//imcf:allow determinism wall-clock build latency feeds metrics only, never simulation results
	wp.buildTime = time.Since(start)
}

// ledgerState is the sequential part of the EP replay: the carry-over
// ledger and the planner invocation that consumes it, window by window
// in order.
type ledgerState struct {
	planner  *core.Planner
	opts     Options
	carryCap float64
	carry    float64
	problem  core.Problem
	// rec, when non-nil, is the provenance recorder bound to each window
	// just before its plan runs (journaling replay mode).
	rec *simRecorder
}

// consumeWindow runs the planner over one prepared window and folds the
// outcome into the accumulator. It must be called in window order: the
// ledger carry and the planner's RNG both advance here.
//
//imcf:noalloc
func (w *Workload) consumeWindow(ls *ledgerState, wp *windowProblem, acc *runAccumulator) error {
	//imcf:allow determinism wall-clock planner latency feeds metrics only, never simulation results
	start := time.Now()
	budget := wp.hourBudget
	if !ls.opts.NoCarryOver {
		budget += ls.carry
	}
	ls.problem.Costs = wp.costs
	ls.problem.Budget = max(budget-wp.necessity, 0)

	if ls.rec != nil {
		ls.rec.bind(wp, w.Grid.Slot(wp.w0).Start, wp.w0/ls.opts.PlanWindowHours)
	}
	sol, eval, err := ls.planner.Plan(ls.problem)
	if err != nil {
		return err
	}
	//imcf:allow determinism wall-clock planner latency feeds metrics only, never simulation results
	d := wp.buildTime + time.Since(start)
	acc.plannerTime += d
	acc.latency.Observe(d.Seconds())
	metrics.PlannerWindowSeconds.Observe(d.Seconds())

	spent := eval.Energy + wp.necessity
	acc.totalEnergy += spent
	if !ls.opts.NoCarryOver {
		ls.carry = min(max(budget-spent, 0), ls.carryCap)
	}
	for j, pi := range wp.planned {
		wr := &wp.present[pi]
		if sol[j] {
			acc.executed += wr.slots
		} else {
			acc.totalError += wr.dropErr
			acc.ownerErr[w.ruleList[wr.ri].owner] += wr.dropErr
		}
	}
	for i := range wp.present {
		wr := &wp.present[i]
		r := &w.ruleList[wr.ri]
		acc.active += wr.slots
		acc.ownerActive[r.owner] += wr.slots
		if r.necessity {
			acc.executed += wr.slots
		}
	}
	return nil
}

// runEP replays the Energy Planner: one invocation per plan window, one
// activation bit per meta-rule for the whole window (the paper's
// s = ⟨s_1 … s_N⟩ over the MRT), constrained by the window's amortized
// budget plus the bounded ledger.
//
// Window problems depend only on the trace, so their construction is
// pipelined: a bounded producer pool builds windows ahead of the
// consumer, while the ledger/search loop itself stays strictly
// sequential — the carry-over budget and the planner RNG both thread
// state from window to window.
func (w *Workload) runEP(planner *core.Planner, opts Options, hourlyBudget [13]float64, carryCap float64, acc *runAccumulator) error {
	n := w.Grid.Len()
	window := opts.PlanWindowHours
	nWindows := (n + window - 1) / window
	ls := &ledgerState{planner: planner, opts: opts, carryCap: carryCap}
	if opts.Journal != nil {
		ls.rec = &simRecorder{j: opts.Journal, w: w}
		planner.SetRecorder(ls.rec)
	}

	workers := opts.workers()
	if workers > nWindows {
		workers = nWindows
	}
	if workers <= 1 || nWindows < 2 {
		// Sequential fallback: build and consume inline.
		wp := &windowProblem{}
		scr := newWinScratch(len(w.ruleList))
		for w0 := 0; w0 < n; w0 += window {
			wEnd := min(w0+window, n)
			w.buildWindow(wp, scr, &hourlyBudget, w0, wEnd)
			if err := w.consumeWindow(ls, wp, acc); err != nil {
				return err
			}
		}
		return nil
	}
	return w.runEPPipelined(ls, acc, hourlyBudget, workers, nWindows)
}

// prefetchDepth is how many windows each producer may run ahead of the
// consumer; workers × prefetchDepth window problems are in flight at
// most, bounding peak memory.
const prefetchDepth = 4

// runEPPipelined overlaps window-problem construction with the
// sequential ledger/search loop. Producers claim window indices from an
// atomic counter and recycle windowProblem structs through a free list
// whose capacity bounds the prefetch distance; the consumer receives
// each window over a per-window buffered channel, preserving window
// order exactly.
func (w *Workload) runEPPipelined(ls *ledgerState, acc *runAccumulator, hourlyBudget [13]float64, workers, nWindows int) error {
	n := w.Grid.Len()
	window := ls.opts.PlanWindowHours

	inflight := workers * prefetchDepth
	if inflight > nWindows {
		inflight = nWindows
	}
	free := make(chan *windowProblem, inflight)
	for i := 0; i < inflight; i++ {
		free <- &windowProblem{}
	}
	built := make([]chan *windowProblem, nWindows)
	for k := range built {
		built[k] = make(chan *windowProblem, 1)
	}
	stop := make(chan struct{})

	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scr := newWinScratch(len(w.ruleList))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int(next.Add(1)) - 1
				if k >= nWindows {
					return
				}
				var wp *windowProblem
				select {
				case wp = <-free:
				case <-stop:
					return
				}
				w0 := k * window
				w.buildWindow(wp, scr, &hourlyBudget, w0, min(w0+window, n))
				built[k] <- wp // buffered(1), single producer per window
			}
		}()
	}

	var err error
	for k := 0; k < nWindows; k++ {
		wp := <-built[k]
		if err = w.consumeWindow(ls, wp, acc); err != nil {
			break
		}
		free <- wp
	}
	close(stop)
	wg.Wait()
	return err
}

// runPerSlot replays the window-invariant baselines slot by slot. The
// problem, solution and IFTTT output table are scratch reused across
// slots, keeping the inner loop allocation-free.
func (w *Workload) runPerSlot(alg Algorithm, acc *runAccumulator) error {
	n := w.Grid.Len()
	var problem core.Problem
	var sol core.Solution
	var outputs map[rules.Action]float64
	for i := 0; i < n; i++ {
		slot := w.Grid.Slot(i)
		idx := w.byHour[slot.HourOfDay()]
		if len(idx) == 0 {
			continue
		}
		problem.Costs = problem.Costs[:0]
		for _, ri := range idx {
			r := &w.ruleList[ri]
			problem.Costs = append(problem.Costs, core.RuleCost{
				DropError: w.dropError(r, i),
				Energy:    r.energyKWh,
			})
		}

		var eval core.Eval
		//imcf:allow determinism wall-clock per-slot latency feeds metrics only, never simulation results
		start := time.Now()
		switch alg {
		case NR:
			sol, eval = core.NoRuleInto(problem, sol)
		case MR:
			sol, eval = core.MetaRuleAllInto(problem, sol)
		case IFTTT:
			outputs = rules.Outputs(w.Residence.IFTTT, w.envs[i])
			sol, eval = w.iftttSlot(problem, idx, outputs, sol)
		default:
			return fmt.Errorf("sim: unknown algorithm %v", alg)
		}
		//imcf:allow determinism wall-clock per-slot latency feeds metrics only, never simulation results
		d := time.Since(start)
		acc.plannerTime += d
		acc.latency.Observe(d.Seconds())
		metrics.PlannerWindowSeconds.Observe(d.Seconds())

		acc.totalEnergy += eval.Energy
		acc.active += int64(len(idx))
		for j, ri := range idx {
			r := &w.ruleList[ri]
			var ce float64
			if sol[j] {
				acc.executed++
				if alg == IFTTT {
					ce = w.iftttMismatch(r, outputs)
				}
			} else {
				ce = problem.Costs[j].DropError
			}
			acc.totalError += ce
			acc.ownerErr[r.owner] += ce
			acc.ownerActive[r.owner]++
		}
	}
	return nil
}

// iftttSlot models the trigger-action baseline for one slot: every zone
// device whose action kind the IFTTT table sets is actuated (consuming
// its energy), regardless of budget; rules whose action kind the table
// does not set fall back to ambient (dropped). outputs is the slot's
// resolved trigger-action table, computed once by the caller and shared
// with the mismatch scoring.
//
//imcf:noalloc
func (w *Workload) iftttSlot(p core.Problem, idx []int, outputs map[rules.Action]float64, sol core.Solution) (core.Solution, core.Eval) {
	if cap(sol) < len(idx) {
		sol = make(core.Solution, len(idx))
	}
	sol = sol[:len(idx)]
	var eval core.Eval
	for j, ri := range idx {
		r := &w.ruleList[ri]
		action := rules.ActionSetLight
		if r.isTemp {
			action = rules.ActionSetTemperature
		}
		if _, ok := outputs[action]; ok {
			sol[j] = true
			eval.Energy += p.Costs[j].Energy
		} else {
			sol[j] = false
			eval.Error += p.Costs[j].DropError
		}
	}
	return sol, eval
}

// iftttMismatch is the convenience error of an executed IFTTT action:
// the deviation between the MRT-desired output and the IFTTT-set output.
func (w *Workload) iftttMismatch(r *ruleStatic, outputs map[rules.Action]float64) float64 {
	action := rules.ActionSetLight
	if r.isTemp {
		action = rules.ActionSetTemperature
	}
	set, ok := outputs[action]
	if !ok {
		return 0
	}
	return w.Model.Error(r.rule.Action, r.desired, set)
}
