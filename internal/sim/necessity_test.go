package sim

import (
	"testing"

	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/rules"
)

// necessityFlat marks the flat's Night Heat as a necessity rule (e.g. a
// medical requirement) and shrinks the budget so the planner is forced
// to choose.
func necessityFlat(t *testing.T) *home.Residence {
	t.Helper()
	res := oneYearFlat(t)
	for i := range res.MRT.Rules {
		if res.MRT.Rules[i].Name == "Night Heat" {
			res.MRT.Rules[i].Necessity = true
		}
	}
	return res
}

func TestNecessityRulesAlwaysExecute(t *testing.T) {
	res := necessityFlat(t)
	w := buildWorkload(t, res)

	// Starve the planner to 1 % of the budget: convenience rules are
	// essentially unaffordable, but the necessity rule must still run.
	opts := Options{Savings: 0.99}
	opts.Planner.Seed = 3
	r, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Night Heat runs 6 h/day regardless: its energy alone is
	// 6 × 0.6 × 365 = 1314 kWh — far beyond the ~110 kWh budget.
	if r.Energy.KWh() < 1314-1 {
		t.Errorf("F_E = %.0f kWh, below the necessity rule's own %.0f", r.Energy.KWh(), 1314.0)
	}
	if r.ExecutedRuleSlots < 6*365 {
		t.Errorf("executed %d rule-slots, want at least the necessity rule's %d",
			r.ExecutedRuleSlots, 6*365)
	}

	// The same starved run without the necessity flag stays within its
	// tiny budget and drops night heating freely.
	plain := oneYearFlat(t)
	wp := buildWorkload(t, plain)
	rp, err := Run(wp, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Energy.KWh() > rp.BudgetTotal.KWh() {
		t.Errorf("plain starved run exceeded budget: %v > %v", rp.Energy, rp.BudgetTotal)
	}
	if rp.Energy.KWh() >= 1314 {
		t.Errorf("plain starved run consumed %.0f kWh — night heat not droppable?", rp.Energy.KWh())
	}
}

func TestNecessityReducesConvenienceBudget(t *testing.T) {
	// With the same total budget, committing energy to a necessity
	// rule leaves less for the others: convenience error must not
	// improve.
	res := necessityFlat(t)
	w := buildWorkload(t, res)
	plain := oneYearFlat(t)
	wp := buildWorkload(t, plain)

	opts := Options{Savings: 0.5}
	opts.Planner.Seed = 3
	withNec, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(wp, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if float64(withNec.ConvenienceError) < float64(without.ConvenienceError)*0.98 {
		t.Errorf("necessity commitment improved F_CE: %v vs %v",
			withNec.ConvenienceError, without.ConvenienceError)
	}
}

func TestNecessitiesAccessor(t *testing.T) {
	res := necessityFlat(t)
	nec := res.MRT.Necessities()
	if len(nec) != 1 || nec[0].Name != "Night Heat" {
		t.Errorf("Necessities() = %+v", nec)
	}
	if got := len(rules.FlatMRT().Necessities()); got != 0 {
		t.Errorf("plain flat MRT has %d necessity rules", got)
	}
}
