package sim

import (
	"testing"
	"time"

	"github.com/imcf/imcf/internal/home"
)

// TestCalibrationFlatFig6 replays the full three-year flat experiment and
// checks the Fig. 6 shape: the algorithm orderings and the approximate
// levels the paper reports (EP ≈ 9.5 MWh under the 11 MWh budget with
// F_CE in the low single digits; NR ≈ 62 % error at zero energy; IFTTT
// and MR greedy on energy). Run with -v to see the measured values.
func TestCalibrationFlatFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("3-year replay skipped in -short mode")
	}
	flat, err := home.Flat(42)
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildWorkload(flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	results := map[Algorithm]Result{}
	for _, alg := range []Algorithm{NR, IFTTT, EP, MR} {
		opts := Options{}
		opts.Planner.Seed = 7
		r, err := Run(w, alg, opts)
		if err != nil {
			t.Fatal(err)
		}
		results[alg] = r
		t.Logf("%-6s F_E=%9.1f kWh  F_CE=%6.2f%%  F_T=%8v  exec=%d/%d",
			alg, r.Energy.KWh(), float64(r.ConvenienceError),
			r.PlannerTime.Round(time.Millisecond), r.ExecutedRuleSlots, r.ActiveRuleSlots)
	}

	nr, ifttt, ep, mr := results[NR], results[IFTTT], results[EP], results[MR]

	// NR: zero energy, worst error near the paper's 62 %.
	if nr.Energy != 0 {
		t.Errorf("NR energy = %v, want 0", nr.Energy)
	}
	if ce := float64(nr.ConvenienceError); ce < 50 || ce > 72 {
		t.Errorf("NR F_CE = %.1f%%, want ≈62%%", ce)
	}
	// MR: zero error, max energy near 14.9 MWh.
	if mr.ConvenienceError != 0 {
		t.Errorf("MR F_CE = %v, want 0", mr.ConvenienceError)
	}
	if e := mr.Energy.KWh(); e < 13000 || e > 16500 {
		t.Errorf("MR F_E = %.0f kWh, want ≈14900", e)
	}
	// EP: within budget, close to the paper's ≈9.5 MWh, low error.
	if e := ep.Energy.KWh(); e > 11000 {
		t.Errorf("EP F_E = %.0f kWh exceeds the 11000 budget", e)
	}
	if e := ep.Energy.KWh(); e < 8200 || e > 10800 {
		t.Errorf("EP F_E = %.0f kWh, want ≈9500", e)
	}
	if ce := float64(ep.ConvenienceError); ce < 0.5 || ce > 6 {
		t.Errorf("EP F_CE = %.2f%%, want ≈2–4%%", ce)
	}
	// IFTTT: error between EP and NR, greedy energy near MR.
	if ce := float64(ifttt.ConvenienceError); ce < float64(ep.ConvenienceError) || ce > float64(nr.ConvenienceError) {
		t.Errorf("IFTTT F_CE = %.1f%% not between EP and NR", ce)
	}
	if ce := float64(ifttt.ConvenienceError); ce < 15 || ce > 40 {
		t.Errorf("IFTTT F_CE = %.1f%%, want ≈26%%", ce)
	}
	if ifttt.Energy.KWh() < ep.Energy.KWh() {
		t.Errorf("IFTTT F_E = %v below EP %v; should be greedy-high", ifttt.Energy, ep.Energy)
	}
	// Ordering of F_E: NR < EP < MR.
	if !(nr.Energy < ep.Energy && ep.Energy < mr.Energy) {
		t.Errorf("energy ordering violated: NR=%v EP=%v MR=%v", nr.Energy, ep.Energy, mr.Energy)
	}
}

// runDataset replays all four algorithms over a residence and verifies
// the Fig. 6 shape against the given expected levels.
func runDataset(t *testing.T, res *home.Residence, budget, epLo, epHi, mrLo, mrHi, epCEHi float64) {
	t.Helper()
	w, err := BuildWorkload(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	results := map[Algorithm]Result{}
	for _, alg := range []Algorithm{NR, IFTTT, EP, MR} {
		opts := Options{}
		opts.Planner.Seed = 11
		r, err := Run(w, alg, opts)
		if err != nil {
			t.Fatal(err)
		}
		results[alg] = r
		t.Logf("%-6s F_E=%10.1f kWh  F_CE=%6.2f%%  F_T=%8v",
			alg, r.Energy.KWh(), float64(r.ConvenienceError), r.PlannerTime.Round(time.Millisecond))
	}
	nr, ifttt, ep, mr := results[NR], results[IFTTT], results[EP], results[MR]
	if nr.Energy != 0 || mr.ConvenienceError != 0 {
		t.Errorf("baseline degeneracies violated: NR F_E=%v MR F_CE=%v", nr.Energy, mr.ConvenienceError)
	}
	if e := ep.Energy.KWh(); e > budget || e < epLo || e > epHi {
		t.Errorf("EP F_E = %.0f, want within [%.0f, %.0f] and ≤ budget %.0f", e, epLo, epHi, budget)
	}
	if e := mr.Energy.KWh(); e < mrLo || e > mrHi {
		t.Errorf("MR F_E = %.0f, want ≈[%.0f, %.0f]", e, mrLo, mrHi)
	}
	if ce := float64(ep.ConvenienceError); ce <= 0 || ce > epCEHi {
		t.Errorf("EP F_CE = %.2f%%, want (0, %.1f]", ce, epCEHi)
	}
	if !(float64(ep.ConvenienceError) < float64(ifttt.ConvenienceError) &&
		float64(ifttt.ConvenienceError) < float64(nr.ConvenienceError)) {
		t.Errorf("error ordering violated: EP=%v IFTTT=%v NR=%v",
			ep.ConvenienceError, ifttt.ConvenienceError, nr.ConvenienceError)
	}
}

func TestCalibrationHouseFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("3-year replay skipped in -short mode")
	}
	res, err := home.House(42)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: budget 25500, EP ≈ 22300 (F_CE 2–2.5 %), MR ≈ 32300.
	runDataset(t, res, 25500, 19000, 24500, 29000, 36000, 5)
}

func TestCalibrationDormsFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("3-year replay skipped in -short mode")
	}
	res, err := home.Dorms(42)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: budget 480000, EP ≈ 410000 (F_CE 2.5–3 %), MR ≈ 560000.
	runDataset(t, res, 480000, 360000, 460000, 520000, 620000, 6)
}
