package sim

import (
	"time"

	"github.com/imcf/imcf/internal/simclock"
)

// simSlot wraps an instant in a one-hour Slot for tests.
func simSlot(at time.Time) simclock.Slot {
	return simclock.Slot{Start: at, Duration: time.Hour}
}
