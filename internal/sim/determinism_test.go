package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"testing"
)

// resultLedgerHash digests the bit-exact, order-independent content of a
// Result: the float64 bits of F_E, F_CE and the budget, the rule-slot
// ledger counts, and the per-owner error attribution in sorted owner
// order. Wall-clock fields (F_T, the latency histogram) are excluded by
// construction — they legitimately vary between runs.
func resultLedgerHash(t *testing.T, r Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		if _, err := h.Write(b[:]); err != nil {
			t.Fatal(err)
		}
	}
	put(math.Float64bits(r.Energy.KWh()))
	put(math.Float64bits(float64(r.ConvenienceError)))
	put(math.Float64bits(r.BudgetTotal.KWh()))
	put(uint64(r.Slots))
	put(uint64(r.ActiveRuleSlots))
	put(uint64(r.ExecutedRuleSlots))
	owners := make([]string, 0, len(r.PerOwner))
	for o := range r.PerOwner {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, o := range owners {
		if _, err := h.Write([]byte(o)); err != nil {
			t.Fatal(err)
		}
		put(math.Float64bits(float64(r.PerOwner[o])))
	}
	return h.Sum64()
}

// TestRunDeterminismHashes is the runtime counterpart of the
// determinism lint rule: the full simulation, run twice sequentially
// and twice with a parallel prefetch pipeline in one process, must
// produce bit-identical F_CE, F_E and ledger hashes across all four
// runs. Any wall-clock, map-order or scheduling dependence in the
// replay path shows up as a hash mismatch here.
func TestRunDeterminismHashes(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	for _, alg := range []Algorithm{NR, IFTTT, EP, MR} {
		var hashes []uint64
		var labels []string
		for _, workers := range []int{1, 1, 8, 8} {
			opts := Options{Workers: workers}
			opts.Planner.Seed = 42
			res, err := Run(w, alg, opts)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", alg, workers, err)
			}
			hashes = append(hashes, resultLedgerHash(t, res))
			labels = append(labels, map[bool]string{true: "sequential", false: "parallel"}[workers == 1])
		}
		for i := 1; i < len(hashes); i++ {
			if hashes[i] != hashes[0] {
				t.Errorf("%v: run %d (%s) hash %#x != run 0 (%s) hash %#x — replay is not deterministic",
					alg, i, labels[i], hashes[i], labels[0], hashes[0])
			}
		}
	}
}
