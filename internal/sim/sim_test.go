package sim

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/imcf/imcf/internal/core"
	"github.com/imcf/imcf/internal/ecp"
	"github.com/imcf/imcf/internal/home"
)

// oneYearFlat returns a flat residence shortened to one year for fast
// unit tests (the calibration tests cover the full three-year runs).
func oneYearFlat(t *testing.T) *home.Residence {
	t.Helper()
	res, err := home.Flat(42)
	if err != nil {
		t.Fatal(err)
	}
	res.Years = 1
	return res
}

func buildWorkload(t *testing.T, res *home.Residence) *Workload {
	t.Helper()
	w, err := BuildWorkload(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorkloadValidation(t *testing.T) {
	if _, err := BuildWorkload(nil, Options{}); err == nil {
		t.Error("nil residence accepted")
	}
	res := oneYearFlat(t)
	res.MRT.Rules[0].Zone = 99
	if _, err := BuildWorkload(res, Options{}); err == nil {
		t.Error("invalid residence accepted")
	}
}

func TestWorkloadShape(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	if w.Grid.Len() != 365*24 {
		t.Errorf("grid has %d slots, want 8760", w.Grid.Len())
	}
	// Hour 3 has Night Heat only; hour 5 adds Morning Lights; hour 0
	// has nothing.
	if n := len(w.byHour[3]); n != 1 {
		t.Errorf("hour 3 has %d active rules, want 1", n)
	}
	if n := len(w.byHour[5]); n != 2 {
		t.Errorf("hour 5 has %d active rules, want 2", n)
	}
	if n := len(w.byHour[0]); n != 0 {
		t.Errorf("hour 0 has %d active rules, want 0", n)
	}
}

func TestRunInvalidInputs(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	if _, err := Run(w, Algorithm(99), Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(w, EP, Options{Savings: 1.5}); err == nil {
		t.Error("savings ≥ 1 accepted")
	}
	if _, err := Run(w, EP, Options{Savings: -0.1}); err == nil {
		t.Error("negative savings accepted")
	}
	if _, err := Run(w, EP, Options{CarryCapHours: -1}); err == nil {
		t.Error("negative carry cap accepted")
	}
	bad := Options{}
	bad.Planner = core.Config{K: -1, MaxIter: 1, Init: core.InitAllOn}
	if _, err := Run(w, EP, bad); err == nil {
		t.Error("invalid planner config accepted")
	}
}

func TestRunBaselinesInvariants(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	nr, err := Run(w, NR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nr.Energy != 0 || nr.ExecutedRuleSlots != 0 {
		t.Errorf("NR consumed energy: %+v", nr)
	}
	if nr.ConvenienceError <= 0 {
		t.Error("NR error not positive")
	}
	mr, err := Run(w, MR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mr.ConvenienceError != 0 {
		t.Errorf("MR error = %v", mr.ConvenienceError)
	}
	if mr.ExecutedRuleSlots != mr.ActiveRuleSlots {
		t.Errorf("MR executed %d of %d", mr.ExecutedRuleSlots, mr.ActiveRuleSlots)
	}
	// Table II windows cover 39 rule-hours/day.
	if want := int64(39 * 365); mr.ActiveRuleSlots != want {
		t.Errorf("active rule-slots = %d, want %d", mr.ActiveRuleSlots, want)
	}
}

func TestRunEPRespectsBudget(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	opts := Options{}
	opts.Planner.Seed = 3
	ep, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Energy > ep.BudgetTotal {
		t.Errorf("EP energy %v exceeds budget %v", ep.Energy, ep.BudgetTotal)
	}
	if ep.ExecutedRuleSlots == 0 || ep.ExecutedRuleSlots == ep.ActiveRuleSlots {
		t.Errorf("EP executed %d of %d: no planning happened", ep.ExecutedRuleSlots, ep.ActiveRuleSlots)
	}
}

func TestRunDeterminism(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	opts := Options{}
	opts.Planner.Seed = 5
	a, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.ConvenienceError != b.ConvenienceError {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSavingsReducesEnergy(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	opts := Options{}
	opts.Planner.Seed = 5
	base, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Savings = 0.4
	saved, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if saved.BudgetTotal.KWh() >= base.BudgetTotal.KWh() {
		t.Errorf("savings did not shrink budget: %v vs %v", saved.BudgetTotal, base.BudgetTotal)
	}
	if saved.Energy >= base.Energy {
		t.Errorf("40%% savings did not reduce energy: %v vs %v", saved.Energy, base.Energy)
	}
	if saved.ConvenienceError < base.ConvenienceError {
		t.Errorf("saving energy improved convenience: %v vs %v", saved.ConvenienceError, base.ConvenienceError)
	}
}

func TestCarryOverAblation(t *testing.T) {
	// At per-slot granularity the ledger is what makes split-unit
	// hours affordable in low-ECP months: without it EP collapses to
	// cheap rules only.
	w := buildWorkload(t, oneYearFlat(t))
	opts := Options{PlanWindowHours: 1}
	opts.Planner.Seed = 5
	with, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.NoCarryOver = true
	without, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if without.Energy >= with.Energy {
		t.Errorf("no-carry energy %v not below carry energy %v", without.Energy, with.Energy)
	}
	if without.ConvenienceError <= with.ConvenienceError {
		t.Errorf("no-carry error %v not worse than carry %v", without.ConvenienceError, with.ConvenienceError)
	}

	// At the default daily window the amortization already smooths
	// within the day, so disabling the ledger must not blow up.
	daily := Options{NoCarryOver: true}
	daily.Planner.Seed = 5
	r, err := Run(w, EP, daily)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy > r.BudgetTotal {
		t.Errorf("daily no-carry exceeded budget: %v > %v", r.Energy, r.BudgetTotal)
	}
}

func TestPlanWindowAblation(t *testing.T) {
	// Finer decision windows give the planner strictly more freedom:
	// per-slot plans must not be worse on error while staying within
	// budget.
	w := buildWorkload(t, oneYearFlat(t))
	daily := Options{}
	daily.Planner.Seed = 5
	d, err := Run(w, EP, daily)
	if err != nil {
		t.Fatal(err)
	}
	hourly := Options{PlanWindowHours: 1}
	hourly.Planner.Seed = 5
	h, err := Run(w, EP, hourly)
	if err != nil {
		t.Fatal(err)
	}
	if h.Energy > h.BudgetTotal || d.Energy > d.BudgetTotal {
		t.Errorf("budget violated: hourly %v, daily %v (budget %v)", h.Energy, d.Energy, d.BudgetTotal)
	}
	if float64(h.ConvenienceError) > float64(d.ConvenienceError)*1.5 {
		t.Errorf("hourly plans much worse than daily: %v vs %v", h.ConvenienceError, d.ConvenienceError)
	}
	if _, err := Run(w, EP, Options{PlanWindowHours: -3}); err == nil {
		t.Error("negative plan window accepted")
	}
}

func TestFormulaVariants(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	for _, f := range []ecp.Formula{ecp.LAF, ecp.EAF} {
		opts := Options{Formula: f}
		opts.Planner.Seed = 5
		r, err := Run(w, EP, opts)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if r.Energy > r.BudgetTotal {
			t.Errorf("%v: over budget", f)
		}
	}
	blaf := Options{Formula: ecp.BLAF, SaveFraction: 0.3, SaveMonths: ecp.SummerSaveMonths()}
	blaf.Planner.Seed = 5
	r, err := Run(w, EP, blaf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy > r.BudgetTotal {
		t.Error("BLAF: over budget")
	}
}

func TestIFTTTExecutesGreedily(t *testing.T) {
	w := buildWorkload(t, oneYearFlat(t))
	r, err := Run(w, IFTTT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Table III always sets a temperature (season rules cover every
	// slot) and usually a light level, so execution is near-total.
	if r.ExecutedRuleSlots < r.ActiveRuleSlots*9/10 {
		t.Errorf("IFTTT executed %d of %d", r.ExecutedRuleSlots, r.ActiveRuleSlots)
	}
	if r.ConvenienceError <= 0 {
		t.Error("IFTTT error should be positive (setpoint mismatches)")
	}
}

func TestPerOwnerAttribution(t *testing.T) {
	res, err := home.House(42)
	if err != nil {
		t.Fatal(err)
	}
	res.Years = 1
	w := buildWorkload(t, res)
	opts := Options{}
	opts.Planner.Seed = 5
	r, err := Run(w, EP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerOwner) != 4 {
		t.Fatalf("PerOwner has %d entries: %v", len(r.PerOwner), r.PerOwner)
	}
	for owner, ce := range r.PerOwner {
		if ce < 0 || float64(ce) > 100 {
			t.Errorf("owner %s error %v out of range", owner, ce)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if NR.String() != "NR" || IFTTT.String() != "IFTTT" || EP.String() != "EP" || MR.String() != "MR" {
		t.Error("algorithm names wrong")
	}
}

func TestDoorOpenPattern(t *testing.T) {
	start := time.Date(2014, time.March, 1, 0, 0, 0, 0, time.UTC)
	open := 0
	total := 0
	for d := 0; d < 60; d++ {
		for h := 0; h < 24; h++ {
			slot := simSlot(start.AddDate(0, 0, d).Add(time.Duration(h) * time.Hour))
			isOpen := doorOpen("Flat", slot)
			if h < 7 || h > 21 {
				if isOpen {
					t.Fatalf("door open at night hour %d", h)
				}
				continue
			}
			total++
			if isOpen {
				open++
			}
		}
	}
	frac := float64(open) / float64(total)
	if frac < 0.1 || frac > 0.35 {
		t.Errorf("daytime door-open fraction %.2f outside [0.1, 0.35]", frac)
	}
}

func TestPropertyEPAlwaysWithinBudget(t *testing.T) {
	// Across random option combinations the planner must never exceed
	// its total budget and must report internally consistent counters.
	w := buildWorkload(t, oneYearFlat(t))
	f := func(seed uint16, savingsRaw uint8, window uint8, noCarry bool, k uint8) bool {
		opts := Options{
			Savings:         float64(savingsRaw%60) / 100,
			PlanWindowHours: 1 + int(window%48),
			NoCarryOver:     noCarry,
		}
		opts.Planner.Seed = uint64(seed)
		opts.Planner.K = 1 + int(k%6)
		r, err := Run(w, EP, opts)
		if err != nil {
			return false
		}
		if r.Energy.KWh() > r.BudgetTotal.KWh()+1e-6 {
			return false
		}
		if r.ExecutedRuleSlots > r.ActiveRuleSlots {
			return false
		}
		ce := float64(r.ConvenienceError)
		return ce >= 0 && ce <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEPTracksExhaustiveOptimum(t *testing.T) {
	// On the flat (≤6 rules per daily window) the exhaustive engine is
	// tractable; hill climbing must land within a whisker of the true
	// optimum over a full year.
	w := buildWorkload(t, oneYearFlat(t))
	hc := Options{Savings: 0.6} // stress the budget so planning matters
	hc.Planner.Seed = 9
	heuristic, err := Run(w, EP, hc)
	if err != nil {
		t.Fatal(err)
	}
	ex := Options{Savings: 0.6}
	ex.Planner.Heuristic = core.Exhaustive
	ex.Planner.K = 1
	ex.Planner.MaxIter = 1
	ex.Planner.Init = core.InitAllOn
	optimum, err := Run(w, EP, ex)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hill climb F_CE=%.3f%%, exhaustive F_CE=%.3f%%",
		float64(heuristic.ConvenienceError), float64(optimum.ConvenienceError))
	if float64(heuristic.ConvenienceError) < float64(optimum.ConvenienceError)-1e-9 {
		t.Fatalf("heuristic beat the exhaustive optimum: %v < %v",
			heuristic.ConvenienceError, optimum.ConvenienceError)
	}
	if float64(heuristic.ConvenienceError) > float64(optimum.ConvenienceError)*1.1+0.1 {
		t.Errorf("hill climbing %.3f%% far from optimum %.3f%%",
			float64(heuristic.ConvenienceError), float64(optimum.ConvenienceError))
	}
}
