// Multi-home tenancy: a single daemon process hosts N tenants, each a
// full Local Controller stack — its own MRT, Energy Planner controller,
// decision journal, persisted decision log, and store namespace —
// sharing the process-wide substrates (clock, metrics registry, fleet
// scheduler, and the stateless hash-based weather/ECP/device trace
// generators, which are pure functions of (seed, time) and therefore
// concurrency-safe by construction).
//
// Store namespacing rides the store.Adapter seam: on the wal and mem
// backends every tenant routes through one shared physical store via
// store.Namespace(parent, "t/<id>/"); on the sharded backend each
// tenant gets its own ShardedDB under StoreDir/tenants/<id>, so shard
// fan-out and compaction stay per-home. Persisted artifacts follow the
// same layout (PersistDir/tenants/<id>/...). A single-home daemon
// (Options.Tenants empty) synthesizes one default tenant with no
// prefix and the legacy directory layout — bit-for-bit the daemon this
// package always was.
package daemon

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/devicesim"
	"github.com/imcf/imcf/internal/firewall"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/store"
	"github.com/imcf/imcf/internal/stream"
	"github.com/imcf/imcf/internal/units"
)

// DefaultTenantID names the tenant synthesized for single-home daemons
// and the tenant legacy (un-prefixed) routes alias to.
const DefaultTenantID = "home"

// maxTenantIDLen bounds tenant identifiers; they become path elements
// and metric label values, so they stay short.
const maxTenantIDLen = 64

// TenantSpec declares one home hosted by a multi-tenant daemon. Empty
// fields inherit the corresponding daemon-wide Options value (Seed is
// taken verbatim — cmd/imcfd derives per-home seeds from -seed plus the
// tenant's position).
type TenantSpec struct {
	// ID is the home identifier, routed as /t/<ID>/... and used as the
	// store-namespace and directory name; see ParseTenantID.
	ID string
	// Residence names the built-in layout; empty inherits Options.
	Residence string
	// Seed parameterizes the home's ambient traces.
	Seed uint64
	// Mode is EP, IFTTT or manual; empty inherits Options.
	Mode string
	// WeeklyBudgetKWh is the weekly energy allowance; 0 inherits
	// Options.
	WeeklyBudgetKWh float64
}

// ParseTenantID validates a tenant identifier. IDs become store-key
// prefixes ("t/<id>/"), journal directory names and URL path segments,
// so the charset is strict: 1–64 characters of [a-zA-Z0-9._-],
// starting with a letter or digit. That rules out every path and
// keyspace escape by construction — no separators ('/', '\'), no
// leading dot (so ".", ".." and hidden files are impossible), no NUL,
// no spaces, nothing URL-escapable.
func ParseTenantID(id string) error {
	if id == "" {
		return errors.New("daemon: empty tenant ID")
	}
	if len(id) > maxTenantIDLen {
		return fmt.Errorf("daemon: tenant ID longer than %d bytes", maxTenantIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		alnum := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if i == 0 && !alnum {
			return fmt.Errorf("daemon: tenant ID %q must start with a letter or digit", id)
		}
		if !alnum && c != '-' && c != '_' && c != '.' {
			return fmt.Errorf("daemon: tenant ID %q may only contain [a-zA-Z0-9._-]", id)
		}
	}
	return nil
}

// mintStreamInstance returns a fresh 8-byte hex token naming one
// stream-hub lifetime. Exhausting the system's entropy source is
// unrecoverable (the same stance metrics takes for trace IDs).
func mintStreamInstance() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("daemon: crypto/rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// tenantStorePrefix is the key prefix routing a tenant's store traffic
// on shared (wal/mem) backends. Because IDs cannot contain '/', two
// tenants' prefixes can never alias each other's keys.
func tenantStorePrefix(id string) string { return "t/" + id + "/" }

// tenantDir is the audited mediator for every per-tenant on-disk
// location: <base>/tenants/<id>. Callers pass IDs ParseTenantID has
// accepted (New validates every spec before building tenants), and the
// charset has no separators, so the path cannot escape base. The
// tenantisolation lint rule recognizes this helper by name; tenant
// paths assembled any other way are findings.
func tenantDir(base, id string) string { return filepath.Join(base, "tenants", id) }

// Tenant is one home inside the daemon: the controller and every
// tenant-scoped resource around it.
type Tenant struct {
	id        string
	isDefault bool
	ctrl      *controller.Controller
	health    *metrics.Health
	journal   *journal.Journal // nil when journaling is disabled
	store     store.Adapter    // tenant-scoped view; nil without a store
	api       http.Handler     // access-log- and degrade-wrapped REST API
	strip     http.Handler     // api behind the /t/<id> prefix strip
	logf      func(string, ...any)
	clock     simclock.Clock
	flight    func(reason, trace string) // degraded-entry flight-recorder hook; nil without a recorder
}

// ID returns the home identifier.
func (t *Tenant) ID() string { return t.id }

// Controller exposes the tenant's Local Controller.
func (t *Tenant) Controller() *controller.Controller { return t.ctrl }

// Journal exposes the tenant's decision-provenance journal, or nil
// when journaling is disabled.
func (t *Tenant) Journal() *journal.Journal { return t.journal }

// Health exposes the tenant's health state.
func (t *Tenant) Health() *metrics.Health { return t.health }

// Handler exposes the tenant's REST API behind its full middleware
// chain (access log, degrade gate, trace correlation) — the serving
// path as requests actually traverse it. imcf-bench drives it
// in-process to price the observability layer.
func (t *Tenant) Handler() http.Handler { return t.api }

// Store exposes the tenant's store view (namespaced on shared
// backends, the tenant's own ShardedDB on the sharded backend), or nil
// when no store is configured.
func (t *Tenant) Store() store.Adapter { return t.store }

// buildResidence constructs a built-in residence layout.
func buildResidence(name string, seed uint64) (*home.Residence, error) {
	switch name {
	case "prototype":
		return home.Prototype(seed)
	case "flat":
		return home.Flat(seed)
	case "house":
		return home.House(seed)
	default:
		return nil, fmt.Errorf("daemon: unknown residence %q", name)
	}
}

// parseMode maps the wire mode names onto controller modes.
func parseMode(mode string) (controller.Mode, error) {
	switch mode {
	case "EP", "ep", "":
		return controller.ModeEP, nil
	case "IFTTT", "ifttt":
		return controller.ModeIFTTT, nil
	case "manual":
		return controller.ModeManual, nil
	default:
		return 0, fmt.Errorf("daemon: unknown mode %q", mode)
	}
}

// newTenant assembles one tenant: residence, journal, persistence,
// optional emulators and the controller, mirroring what the single-home
// daemon always did. Store views are passed in because their layout is
// backend-dependent (see New). Closers for tenant-owned resources are
// appended to the daemon.
func (d *Daemon) newTenant(opts Options, spec TenantSpec, multi bool, view store.Adapter) (*Tenant, error) {
	t := &Tenant{
		id:        spec.ID,
		isDefault: spec.ID == d.defID,
		store:     view,
		logf:      d.logf,
		clock:     d.clock,
	}
	if t.isDefault {
		t.health = metrics.NewHealth(metrics.HealthyGauge)
	} else {
		t.health = metrics.NewHealth(tenantHealthy.With(t.id))
	}

	residence := spec.Residence
	if residence == "" {
		residence = opts.Residence
	}
	res, err := buildResidence(residence, spec.Seed)
	if err != nil {
		return nil, err
	}
	if opts.MRTPath != "" {
		src, err := os.ReadFile(opts.MRTPath)
		if err != nil {
			return nil, err
		}
		mrt, err := rules.ParseMRT(string(src))
		if err != nil {
			return nil, err
		}
		res.MRT = mrt
		if err := res.Validate(); err != nil {
			return nil, fmt.Errorf("daemon: MRT from %s: %w", opts.MRTPath, err)
		}
		t.logf("tenant %s: loaded %d meta-rules from %s", t.id, len(mrt.Rules), opts.MRTPath)
	}

	if opts.JournalCap >= 0 {
		jcap := opts.JournalCap
		if jcap == 0 {
			jcap = DefaultJournalCap
		}
		t.journal = journal.New(jcap)
	}

	budget := spec.WeeklyBudgetKWh
	if budget == 0 {
		budget = opts.WeeklyBudgetKWh
	}
	mode := spec.Mode
	if mode == "" {
		mode = opts.Mode
	}
	cfg := controller.Config{
		Residence:    res,
		WeeklyBudget: units.Energy(budget),
		Clock:        opts.Clock,
		Health:       t.health,
		Binding:      opts.Binding,
		Journal:      t.journal,
		Store:        view,
	}
	if cfg.Mode, err = parseMode(mode); err != nil {
		return nil, err
	}

	if opts.StreamRingCap >= 0 {
		// The instance token marks one hub lifetime: it must differ
		// across daemon restarts (sequence numbers are not comparable),
		// so it is minted from crypto/rand, never from the sim clock.
		hub := stream.NewHub(t.id+"-"+mintStreamInstance(), opts.StreamRingCap)
		cfg.Stream = hub
		d.closers = append(d.closers, func() error { hub.Close(); return nil })
	}

	if opts.PersistDir != "" {
		dir := opts.PersistDir
		if multi {
			dir = tenantDir(opts.PersistDir, t.id)
		}
		svc, err := persistence.OpenFS(dir, opts.FS)
		if err != nil {
			return nil, err
		}
		d.closers = append(d.closers, svc.Close)
		cfg.Persistence = svc
		t.logf("tenant %s: recording measurements to %s", t.id, dir)

		if t.journal != nil {
			jl, err := persistence.OpenJournalOpts(dir,
				persistence.JournalOptions{SyncEvery: opts.JournalSyncEvery, FS: opts.FS})
			if err != nil {
				return nil, err
			}
			d.closers = append(d.closers, jl.Close)
			// Replay first so a restarted daemon can still explain
			// decisions made before the restart, then sink so new
			// verdicts append to the same log.
			n, err := jl.Replay(t.journal.Preload)
			if err != nil {
				return nil, fmt.Errorf("daemon: replay decision journal: %w", err)
			}
			if n > 0 {
				t.logf("tenant %s: replayed %d journaled decisions from %s", t.id, n, jl.Path())
			}
			t.journal.SetSink(jl)
		}
	}

	if opts.Emulate {
		fw := firewall.New(opts.Clock)
		endpoints := make(map[string]string)
		for _, z := range res.Zones {
			dk, err := devicesim.StartDaikin()
			if err != nil {
				return nil, err
			}
			d.closers = append(d.closers, dk.Close)
			endpoints[z.HVAC.ID] = dk.URL()
			t.logf("tenant %s: emulated %s at %s (LAN addr %s)", t.id, z.HVAC.ID, dk.URL(), z.HVAC.Addr)

			hue, err := devicesim.StartHue()
			if err != nil {
				return nil, err
			}
			d.closers = append(d.closers, hue.Close)
			endpoints[z.Light.ID] = hue.URL()
			t.logf("tenant %s: emulated %s at %s (LAN addr %s)", t.id, z.Light.ID, hue.URL(), z.Light.Addr)
		}
		cfg.Firewall = fw
		cfg.Binding = &controller.HTTPBinding{Endpoints: endpoints, Firewall: fw}
	}

	if t.ctrl, err = controller.New(cfg); err != nil {
		return nil, err
	}
	t.api = t.obsMiddleware(t.degradeMiddleware(controller.API(t.ctrl)))
	t.strip = http.StripPrefix("/t/"+t.id, t.api)
	return t, nil
}
