package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
	"github.com/imcf/imcf/internal/simclock"
)

// flightTraceparent is the fixed W3C trace this e2e threads through
// both requests; its trace ID is what every bundle section must carry.
const flightTraceparent = "00-feedfacecafebeef0123456789abcdef-0123456789abcdef-01"

// TestDaemonDegradedFlightBundleCorrelation is the flight-recorder
// e2e: a healthy planning run and a disk-fault-driven degraded flip,
// both under ONE trace, must leave a well-formed bundle whose log
// records, spans and journal events all carry that triggering trace
// ID — the "one correlated evidence trail" contract.
func TestDaemonDegradedFlightBundleCorrelation(t *testing.T) {
	oldLevel := obs.DefaultHandler().Level()
	obs.SetLevel(slog.LevelDebug)
	defer obs.SetLevel(oldLevel)

	tc, ok := metrics.ParseTraceparent(flightTraceparent)
	if !ok {
		t.Fatal("test traceparent does not parse")
	}
	traceID := tc.TraceIDString()

	mem := faultfs.NewMemFS()
	var diskFull atomic.Bool
	inj := faultfs.InjectorFunc(func(op faultfs.FaultOp) *faultfs.Fault {
		if !diskFull.Load() || !strings.HasSuffix(op.Path, "store.wal") {
			return nil
		}
		if op.Op == faultfs.OpWrite || op.Op == faultfs.OpSync {
			return &faultfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})

	d, err := New(Options{
		Addr:            "127.0.0.1:0",
		MetricsAddr:     "127.0.0.1:0",
		Residence:       "prototype",
		Seed:            7,
		Mode:            "EP",
		WeeklyBudgetKWh: 165,
		StoreDir:        "/flight/store",
		DiagnosticsDir:  "/flight/diag",
		FS:              faultfs.NewFaulty(mem, inj),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck // test cleanup
	d.Start()
	api := "http://" + d.APIAddr()

	traced := func(method, url, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(metrics.TraceHeader, flightTraceparent)
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, url, err)
		}
		return resp
	}

	// A healthy planning run under the trace: it journals decisions and
	// records spans carrying the trace ID.
	if resp := traced("POST", api+"/rest/plan/run", "{}"); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /rest/plan/run = %d, want 200", drainStatus(resp))
	} else {
		resp.Body.Close()
	}

	// The disk fills; the next mutation under the SAME trace fails and
	// flips the daemon degraded, which triggers the flight recorder
	// with the request's trace as the correlation key.
	mrtJSON := getBodyOK(t, api+"/rest/mrt")
	diskFull.Store(true)
	if resp := traced("POST", api+"/rest/mrt", mrtJSON); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("disk-full POST /rest/mrt = %d, want 500", drainStatus(resp))
	} else {
		resp.Body.Close()
	}
	if !d.Degraded() {
		t.Fatal("daemon not degraded after the persist failure")
	}

	// Exactly one bundle landed (on the injected filesystem). MemFS has
	// no listing, so derive bundle directories from its paths.
	dirs := map[string]bool{}
	for _, p := range mem.Paths() {
		if strings.HasPrefix(p, "/flight/diag/") {
			dirs[filepath.Dir(p)] = true
		}
	}
	if len(dirs) != 1 {
		t.Fatalf("found %d bundle directories, want 1: %v", len(dirs), dirs)
	}
	var bundle string
	for dir := range dirs {
		bundle = dir
	}

	readSection := func(name string) []byte {
		t.Helper()
		b, err := mem.ReadFile(filepath.Join(bundle, name))
		if err != nil {
			t.Fatalf("bundle section %s: %v", name, err)
		}
		return b
	}

	// The marker vouches for the bundle and names the trigger.
	var meta obs.Meta
	if err := json.Unmarshal(readSection(obs.MetaName), &meta); err != nil {
		t.Fatalf("bundle marker: %v", err)
	}
	if meta.Reason != "degraded" || meta.Tenant != DefaultTenantID || meta.Trace != traceID {
		t.Fatalf("meta = %+v, want reason=degraded tenant=%s trace=%s", meta, DefaultTenantID, traceID)
	}

	// Every log record in the bundle carries the triggering trace,
	// including the degraded-entry record itself.
	logLines := strings.Split(strings.TrimSpace(string(readSection("logs.jsonl"))), "\n")
	if len(logLines) == 0 || logLines[0] == "" {
		t.Fatal("bundle has no log records")
	}
	sawDegradedEntry := false
	for _, line := range logLines {
		var rec obs.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %q: %v", line, err)
		}
		if rec.Trace != traceID {
			t.Fatalf("log record %q carries trace %q, want %q", rec.Msg, rec.Trace, traceID)
		}
		if strings.Contains(rec.Msg, "degraded") {
			sawDegradedEntry = true
		}
	}
	if !sawDegradedEntry {
		t.Fatal("bundle logs are missing the degraded-entry record")
	}

	// Every span shares the trace.
	var spans []metrics.SpanRecord
	if err := json.Unmarshal(readSection("spans.json"), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("bundle has no spans")
	}
	for _, sp := range spans {
		if sp.Trace != traceID {
			t.Fatalf("span %q carries trace %q, want %q", sp.Name, sp.Trace, traceID)
		}
	}

	// Every journal event shares the trace — the planning run's
	// decisions, pinned to the same causal chain.
	jnlLines := strings.Split(strings.TrimSpace(string(readSection("journal.jsonl"))), "\n")
	if len(jnlLines) == 0 || jnlLines[0] == "" {
		t.Fatal("bundle has no journal events")
	}
	for _, line := range jnlLines {
		var ev journal.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if ev.Trace != traceID {
			t.Fatalf("journal event seq %d carries trace %q, want %q", ev.Seq, ev.Trace, traceID)
		}
	}

	// The degraded flip also shows on /healthz as SLO detail context.
	hresp, err := http.Get("http://" + d.MetricsAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	var hz struct {
		Status string             `json:"status"`
		SLO    []obs.TenantStatus `json:"slo"`
	}
	if err := json.Unmarshal(hbody, &hz); err != nil {
		t.Fatalf("unparseable /healthz %q: %v", hbody, err)
	}
	if hz.Status != "degraded" {
		t.Fatalf("/healthz status = %q, want degraded", hz.Status)
	}

	// The disk recovers and the next mutation probes and heals. Beyond
	// closing the loop, this clears the process-global degraded gauge,
	// which outlives this daemon and would otherwise leak into later
	// tests in the package.
	diskFull.Store(false)
	if resp := traced("POST", api+"/rest/mrt", mrtJSON); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery POST /rest/mrt = %d, want 200", drainStatus(resp))
	} else {
		resp.Body.Close()
	}
	if d.Degraded() {
		t.Fatal("daemon still degraded after the disk recovered")
	}
}

// TestObsEquivalence is the behavior-preservation gate for the obs
// layer: the same fleet workload, run with observability fully enabled
// (debug-level logging, SLO feed) and fully disabled, at 1 and 8 fleet
// workers, must produce bit-identical subject ledger hashes — proving
// the flight recorder's substrates never perturb planning bytes.
func TestObsEquivalence(t *testing.T) {
	runOnce := func(t *testing.T, workers int, obsOn bool) uint64 {
		t.Helper()
		oldLevel := obs.DefaultHandler().Level()
		if obsOn {
			obs.SetLevel(slog.LevelDebug)
		} else {
			obs.SetEnabled(false)
		}
		defer func() {
			obs.SetLevel(oldLevel)
			obs.SetEnabled(true)
		}()

		dir := t.TempDir()
		clk := simclock.NewSimClock(equivStart)
		d, err := New(Options{
			Addr: "127.0.0.1:0",
			Tenants: []TenantSpec{
				{ID: equivSubjectID, Residence: "prototype", Seed: 7, WeeklyBudgetKWh: 165},
				{ID: "aa-noisy1", Residence: "flat", Seed: 1001, WeeklyBudgetKWh: 90},
				{ID: "zz-noisy2", Residence: "house", Seed: 1002, WeeklyBudgetKWh: 300},
			},
			FleetWorkers:   workers,
			StoreDir:       filepath.Join(dir, "store"),
			StoreBackend:   "wal",
			PersistDir:     filepath.Join(dir, "persist"),
			DiagnosticsDir: filepath.Join(dir, "diag"),
			Clock:          clk,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		runEquivWorkload(t, d, clk, equivSubjectID)
		hash, evs := ledgerHash(t, d.Tenant(equivSubjectID).Journal())
		if len(evs) == 0 {
			t.Fatal("workload journaled nothing — the equivalence is vacuous")
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return hash
	}

	hashes := map[string]uint64{}
	for _, workers := range []int{1, 8} {
		for _, obsOn := range []bool{false, true} {
			key := fmt.Sprintf("workers=%d/obs=%v", workers, obsOn)
			t.Run(key, func(t *testing.T) {
				hashes[key] = runOnce(t, workers, obsOn)
			})
		}
	}
	var ref uint64
	var refKey string
	for key, h := range hashes {
		if refKey == "" {
			ref, refKey = h, key
			continue
		}
		if h != ref {
			t.Fatalf("ledger hash diverged: %s=%#x vs %s=%#x", refKey, ref, key, h)
		}
	}
}

// TestDaemonSLOPageTriggersBundle drives the SLO state machine to page
// through the fleet's failure feed and asserts the transition snapshots
// a flight bundle attributed to the failing tenant.
func TestDaemonSLOPageTriggersBundle(t *testing.T) {
	mem := faultfs.NewMemFS()
	clk := simclock.NewSimClock(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	d, err := New(Options{
		Addr:            "127.0.0.1:0",
		Residence:       "prototype",
		Seed:            7,
		Mode:            "manual", // manual mode: cycles are cheap no-op plans
		WeeklyBudgetKWh: 165,
		DiagnosticsDir:  "/slo/diag",
		FS:              mem,
		Clock:           clk,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck // test cleanup

	// Feed the SLO engine a sustained failure stream directly (the same
	// path fleet workers use) and evaluate: burn rate saturates in both
	// short windows and the tenant pages.
	for i := 0; i < 30; i++ {
		d.SLO().Observe(DefaultTenantID, clk.Now(), 0.001, true)
		clk.Advance(time.Second)
	}
	d.SLO().Evaluate(clk.Now())
	if got := d.SLO().State(DefaultTenantID); got != obs.StatePage {
		t.Fatalf("SLO state = %v, want page", got)
	}

	var bundles []string
	for _, p := range mem.Paths() {
		if strings.HasPrefix(p, "/slo/diag/") && strings.HasSuffix(p, obs.MetaName) {
			bundles = append(bundles, p)
		}
	}
	if len(bundles) != 1 {
		t.Fatalf("found %d slo-page bundles, want 1 (paths: %v)", len(bundles), mem.Paths())
	}
	b, err := mem.ReadFile(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	var meta obs.Meta
	if err := json.Unmarshal(b, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "slo-page" || meta.Tenant != DefaultTenantID {
		t.Fatalf("meta = %+v, want reason=slo-page tenant=%s", meta, DefaultTenantID)
	}
}
