// Observability wiring: the daemon-side glue between the serving path
// and internal/obs — the structured access log, the per-tenant SLO
// feed, the /healthz SLO detail, the opt-in debug listener (pprof,
// /debug/logs, manual flight triggers) and the flight-recorder taps
// that correlate log records, spans and journal events by the
// triggering tenant and trace.
package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"

	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
)

// obsLogf is the default operator log: printf-shaped messages routed
// into the structured obs layer at Info, so daemon narration lands in
// the ring (and any JSON-line mirror) alongside the serving-path
// records.
func obsLogf(format string, args ...any) {
	l := obs.L()
	if !l.Enabled(context.Background(), slog.LevelInfo) {
		return
	}
	l.Info(fmt.Sprintf(format, args...))
}

// sloConfig resolves the daemon's SLO engine configuration: the
// caller's thresholds (nil means obs defaults) with the daemon's
// transition hook chained in front of any user hook.
func (d *Daemon) sloConfig(user *obs.Config) obs.Config {
	cfg := obs.Config{}
	if user != nil {
		cfg = *user
	}
	userHook := cfg.OnTransition
	cfg.OnTransition = func(tenant string, from, to obs.State) {
		d.onSLOTransition(tenant, from, to)
		if userHook != nil {
			userHook(tenant, from, to)
		}
	}
	return cfg
}

// onSLOTransition reacts to alert state-machine edges: every transition
// is logged; a page transition snapshots a flight bundle for the paging
// tenant.
func (d *Daemon) onSLOTransition(tenant string, from, to obs.State) {
	lvl := slog.LevelWarn
	if to == obs.StateOK {
		lvl = slog.LevelInfo
	}
	obs.L().LogAttrs(context.Background(), lvl, "slo transition",
		slog.String("tenant", tenant),
		slog.String("from", from.String()),
		slog.String("to", to.String()))
	if to == obs.StatePage && d.recorder != nil {
		if _, err := d.recorder.Trigger("slo-page", tenant, ""); err != nil && !errors.Is(err, obs.ErrSuppressed) {
			d.logf("daemon: flight recorder: %v", err)
		}
	}
}

// newRecorder builds the flight recorder over the daemon's substrates:
// the default log ring, the default tracer, the merged decision
// journals and the default metrics registry, all written through the
// daemon's file layer so crash tests can fault-inject the bundle path.
func (d *Daemon) newRecorder(opts Options) (*obs.Recorder, error) {
	ring := obs.DefaultHandler().Ring()
	return obs.NewRecorder(obs.RecorderOptions{
		Dir: opts.DiagnosticsDir,
		FS:  opts.FS,
		Now: d.clock.Now,
		Sources: obs.Sources{
			Logs: func(tenant, trace string) []obs.Record {
				// A trace pins the exact causal chain; otherwise fall back
				// to everything the tenant logged (or everything, for
				// process-wide triggers like SIGQUIT).
				if trace != "" {
					return ring.Query("", trace, slog.LevelDebug, 0)
				}
				return ring.Query(tenant, "", slog.LevelDebug, 0)
			},
			Spans: func(trace string) []metrics.SpanRecord {
				if trace != "" {
					return metrics.DefaultTracer().ByTrace(trace)
				}
				return metrics.DefaultTracer().Recent()
			},
			Journal: func(tenant, trace string) []journal.Event {
				return d.mergedDecisions(journal.Filter{Tenant: tenant, Trace: trace})
			},
			Metrics: func() []byte {
				var buf bytes.Buffer
				bw := bufio.NewWriter(&buf)
				metrics.Default().WritePrometheus(bw)
				bw.Flush() //nolint:errcheck // bytes.Buffer cannot fail
				return buf.Bytes()
			},
		},
	})
}

// tenantFlight returns the tenant's degraded-entry hook into the flight
// recorder. Suppressed triggers (the rate limit) are silent; real
// failures are logged, never propagated — diagnostics must not break
// serving.
func (d *Daemon) tenantFlight(tenant string) func(reason, trace string) {
	return func(reason, trace string) {
		if _, err := d.recorder.Trigger(reason, tenant, trace); err != nil && !errors.Is(err, obs.ErrSuppressed) {
			d.logf("daemon: flight recorder: %v", err)
		}
	}
}

// TriggerFlight dumps a diagnostic bundle on demand (SIGQUIT, POST
// /debug/flight) and returns its directory.
func (d *Daemon) TriggerFlight(reason, tenant, trace string) (string, error) {
	if d.recorder == nil {
		return "", errors.New("daemon: flight recorder disabled (no diagnostics directory)")
	}
	return d.recorder.Trigger(reason, tenant, trace)
}

// healthDetail decorates /healthz with the SLO engine's per-tenant
// alert states and rolling-window statistics.
func (d *Daemon) healthDetail() map[string]any {
	return map[string]any{"slo": d.slo.Snapshot(d.clock.Now())}
}

// debugMux assembles the opt-in debug listener: the pprof surface, the
// structured-log query endpoint and the manual flight trigger.
func (d *Daemon) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/logs", obs.LogsHandler(obs.DefaultHandler().Ring()))
	mux.HandleFunc("POST /debug/flight", d.flightHandler)
	return mux
}

// flightHandler serves POST /debug/flight?reason=&tenant=&trace=: a
// manual bundle dump, answering with the bundle directory.
func (d *Daemon) flightHandler(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	reason := q.Get("reason")
	if reason == "" {
		reason = "manual"
	}
	dir, err := d.TriggerFlight(reason, q.Get("tenant"), q.Get("trace"))
	w.Header().Set("Content-Type", "application/json")
	switch {
	case errors.Is(err, obs.ErrSuppressed):
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck // response committed
	case err != nil:
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck // response committed
	default:
		json.NewEncoder(w).Encode(map[string]string{"bundle": dir}) //nolint:errcheck // response committed
	}
}

// requestTrace extracts the W3C trace ID from an incoming request's
// traceparent header — the correlation key for middleware running
// outside metrics.TraceMiddleware (which lives inside controller.API).
func requestTrace(r *http.Request) string {
	if tc, ok := metrics.ParseTraceparent(r.Header.Get(metrics.TraceHeader)); ok {
		return tc.TraceIDString()
	}
	return ""
}

// obsMiddleware is the tenant's structured access log: one record per
// request (Debug for successes, Warn for server errors) carrying the
// tenant, trace, method, path, status and latency. The level check runs
// before any attribute is built, so below-level requests cost one
// atomic load and allocate nothing in the obs layer.
func (t *Tenant) obsMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := obs.WithTenant(r.Context(), t.id)
		r = r.WithContext(ctx)
		sr := &statusRecorder{ResponseWriter: w}
		start := t.clock.Now()
		next.ServeHTTP(sr, r)
		seconds := t.clock.Now().Sub(start).Seconds()
		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		lvl := slog.LevelDebug
		if status >= http.StatusInternalServerError {
			lvl = slog.LevelWarn
		}
		l := obs.L()
		if !l.Enabled(ctx, lvl) {
			return
		}
		l.LogAttrs(ctx, lvl, "http.request",
			slog.String("trace", requestTrace(r)),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("seconds", seconds))
	})
}
