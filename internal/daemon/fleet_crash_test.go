package daemon

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/fleet"
	"github.com/imcf/imcf/internal/store"
)

// The multi-tenant crash suite extends the kill-at-every-failpoint
// harness to the fleet: N tenants writing through their own store
// namespaces, dispatched by the fleet scheduler, with a crash injected
// at EVERY file operation of the shared filesystem. The invariant is
// per-tenant crash consistency — a crash mid-fleet-cycle must leave
// every tenant at a point in its OWN model history (with SyncWrites,
// no earlier than its last acknowledged step), and must never leak one
// tenant's keys into another's namespace.
//
// Two physical layouts are swept, mirroring how the daemon wires
// tenants onto backends:
//
//   - shared WAL: every tenant is a store.Namespace view over one
//     group-commit DB, so a global log prefix must induce a valid
//     per-tenant prefix for each home;
//   - per-tenant sharded: every tenant owns a ShardedDB under
//     tenants/<id>, so recovery is fully independent per home.
//
// Worker count 1 gives the deterministic reference sweep; worker
// counts > 1 interleave tenants' commits, where group-commit
// coalescing makes the op numbering nondeterministic — there the
// sweep tolerates failpoints that never fire, but every crash that
// does fire must still recover per-tenant consistent state.

var fleetCrashTenants = []string{"ha", "hb", "hc"}

const fleetCrashCycles = 4

// fleetCrashStep is one tenant's planning-cycle write: a versioned MRT
// put, plus on odd cycles an atomic batch rotating a history key —
// the same single-op/multi-op mix the controller issues.
func fleetCrashStep(view store.Adapter, id string, cycle int) error {
	if err := view.Put("imcf/mrt", []byte(fmt.Sprintf("%s-v%d", id, cycle))); err != nil {
		return err
	}
	if cycle%2 == 1 {
		return view.Apply(func(b *store.Batch) error {
			b.Put(fmt.Sprintf("hist/%d", cycle), []byte("ok"))
			if cycle >= 2 {
				b.Delete(fmt.Sprintf("hist/%d", cycle-2))
			}
			return nil
		})
	}
	return nil
}

// fleetCrashModel replays one tenant's model history: the encoded
// state after every individual commit (puts and batches commit
// separately, so the state between them is a valid recovery point).
// Index 0 is the empty store.
func fleetCrashModel(id string) []string {
	m := map[string]string{}
	states := []string{encodeTenantState(m)}
	for cycle := 0; cycle < fleetCrashCycles; cycle++ {
		m["imcf/mrt"] = fmt.Sprintf("%s-v%d", id, cycle)
		states = append(states, encodeTenantState(m))
		if cycle%2 == 1 {
			m[fmt.Sprintf("hist/%d", cycle)] = "ok"
			if cycle >= 2 {
				delete(m, fmt.Sprintf("hist/%d", cycle-2))
			}
			states = append(states, encodeTenantState(m))
		}
	}
	return states
}

// ackIndex maps "this tenant's step for cycle k was acknowledged" to
// the index of the corresponding state in fleetCrashModel's output.
func ackIndex(cycle int) int {
	idx := 0
	for k := 0; k <= cycle; k++ {
		idx++ // the put
		if k%2 == 1 {
			idx++ // the batch
		}
	}
	return idx
}

// encodeTenantState folds a state map into a canonical comparable
// string.
func encodeTenantState(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, m[k])
	}
	return b.String()
}

// encodeAdapter snapshots an adapter view into the same canonical
// encoding.
func encodeAdapter(a store.Adapter) string {
	m := make(map[string]string)
	for _, k := range a.Keys("") {
		v, _ := a.Get(k)
		m[k] = string(v)
	}
	return encodeTenantState(m)
}

// runFleetCrashWorkload opens per-tenant views with openViews, drives
// the crash workload through a fleet scheduler, and reports each
// tenant's highest acknowledged model index (-1: nothing acked).
func runFleetCrashWorkload(openViews func() (map[string]store.Adapter, func() error, error), workers int, dead func() bool) map[string]int {
	acked := make(map[string]int, len(fleetCrashTenants))
	for _, id := range fleetCrashTenants {
		acked[id] = 0 // the empty state is trivially durable
	}
	views, closeAll, err := openViews()
	if err != nil {
		return acked
	}

	cycle := 0
	stepErrs := make([]error, len(fleetCrashTenants))
	members := make([]fleet.Member, len(fleetCrashTenants))
	for i, id := range fleetCrashTenants {
		i, id := i, id
		members[i] = fleet.Member{ID: id, Step: func(context.Context) error {
			err := fleetCrashStep(views[id], id, cycle)
			stepErrs[i] = err
			return err
		}}
	}
	sched, err := fleet.New(members, fleet.Options{Workers: workers, NoMetrics: true})
	if err != nil {
		closeAll() //nolint:errcheck
		return acked
	}

	for cycle = 0; cycle < fleetCrashCycles; cycle++ {
		sched.Cycle(context.Background()) //nolint:errcheck // per-tenant errors tracked via stepErrs
		for i, id := range fleetCrashTenants {
			if stepErrs[i] == nil {
				acked[id] = ackIndex(cycle)
			}
		}
		if dead() {
			break
		}
	}
	closeAll() //nolint:errcheck // the close may be the crash point
	return acked
}

// checkFleetRecovery verifies every tenant's recovered view against
// its own model history, bounded below by its acknowledged index.
func checkFleetRecovery(t *testing.T, n, workers int, views map[string]store.Adapter, acked map[string]int) {
	t.Helper()
	for _, id := range fleetCrashTenants {
		states := fleetCrashModel(id)
		got := encodeAdapter(views[id])
		lo := acked[id]
		found := false
		for j := lo; j < len(states); j++ {
			if got == states[j] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("failpoint %d (workers=%d): tenant %s recovered %q not in valid states[%d:] %q",
				n, workers, id, got, lo, states[lo:])
		}
	}
}

// TestFleetCrashSharedWAL kills the fleet at every failpoint of a
// shared group-commit WAL hosting all tenants behind namespaces.
func TestFleetCrashSharedWAL(t *testing.T) {
	open := func(fs faultfs.FS) (map[string]store.Adapter, func() error, error) {
		db, err := store.Open(store.Options{Dir: "/db", SyncWrites: true, FS: fs})
		if err != nil {
			return nil, nil, err
		}
		views := make(map[string]store.Adapter, len(fleetCrashTenants))
		for _, id := range fleetCrashTenants {
			views[id] = store.Namespace(db, tenantStorePrefix(id))
		}
		return views, db.Close, nil
	}

	for _, workers := range []int{1, 4} {
		for _, tear := range []uint64{0, 0xBEEF} {
			t.Run(fmt.Sprintf("workers=%d/tear=%#x", workers, tear), func(t *testing.T) {
				// Fault-free run to count the failpoints.
				faulty := faultfs.NewFaulty(faultfs.NewMemFS(), nil)
				runFleetCrashWorkload(func() (map[string]store.Adapter, func() error, error) {
					return open(faulty)
				}, workers, faulty.Dead)
				total := faulty.Ops()
				if total < 20 {
					t.Fatalf("suspiciously few failpoints: %d", total)
				}

				for n := 0; n < total; n++ {
					mem := faultfs.NewMemFS()
					faulty := faultfs.NewFaulty(mem, faultfs.CrashAt(n))
					acked := runFleetCrashWorkload(func() (map[string]store.Adapter, func() error, error) {
						return open(faulty)
					}, workers, faulty.Dead)
					if !faulty.Dead() {
						if workers == 1 {
							t.Fatalf("failpoint %d never fired (ops=%d)", n, faulty.Ops())
						}
						// Concurrent group commits coalesce syncs, so late
						// failpoints may not exist on this interleaving.
						continue
					}

					// Power loss, reboot, reopen.
					if tear == 0 {
						mem.Crash()
					} else {
						mem.CrashTearing(tear ^ uint64(n))
					}
					db, err := store.Open(store.Options{Dir: "/db", SyncWrites: true, FS: mem})
					if err != nil {
						t.Fatalf("failpoint %d: reopen: %v", n, err)
					}
					views := make(map[string]store.Adapter, len(fleetCrashTenants))
					for _, id := range fleetCrashTenants {
						views[id] = store.Namespace(db, tenantStorePrefix(id))
					}
					checkFleetRecovery(t, n, workers, views, acked)

					// No cross-tenant leakage: every recovered key lives
					// under some registered tenant's namespace.
					for _, k := range db.Keys("") {
						owned := false
						for _, id := range fleetCrashTenants {
							if strings.HasPrefix(k, tenantStorePrefix(id)) {
								owned = true
								break
							}
						}
						if !owned {
							t.Fatalf("failpoint %d: recovered key %q outside every tenant namespace", n, k)
						}
					}
					if err := db.Close(); err != nil {
						t.Fatalf("failpoint %d: close: %v", n, err)
					}
				}
			})
		}
	}
}

// TestFleetCrashPerTenantSharded kills the fleet at every failpoint of
// the per-tenant-ShardedDB layout (the daemon's multi-tenant sharded
// backend), where each home's shards recover independently.
func TestFleetCrashPerTenantSharded(t *testing.T) {
	const shards = 2
	open := func(fs faultfs.FS) (map[string]store.Adapter, func() error, error) {
		views := make(map[string]store.Adapter, len(fleetCrashTenants))
		var closers []func() error
		closeAll := func() error {
			var first error
			for i := len(closers) - 1; i >= 0; i-- {
				if err := closers[i](); err != nil && first == nil {
					first = err
				}
			}
			return first
		}
		for _, id := range fleetCrashTenants {
			db, err := store.OpenSharded(store.ShardedOptions{
				Dir: "/db/tenants/" + id, Shards: shards, SyncWrites: true, FS: fs,
			})
			if err != nil {
				closeAll() //nolint:errcheck // already failing
				return nil, nil, err
			}
			closers = append(closers, db.Close)
			views[id] = db
		}
		return views, closeAll, nil
	}

	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			faulty := faultfs.NewFaulty(faultfs.NewMemFS(), nil)
			runFleetCrashWorkload(func() (map[string]store.Adapter, func() error, error) {
				return open(faulty)
			}, workers, faulty.Dead)
			total := faulty.Ops()
			if total < 20 {
				t.Fatalf("suspiciously few failpoints: %d", total)
			}

			for n := 0; n < total; n++ {
				mem := faultfs.NewMemFS()
				faulty := faultfs.NewFaulty(mem, faultfs.CrashAt(n))
				acked := runFleetCrashWorkload(func() (map[string]store.Adapter, func() error, error) {
					return open(faulty)
				}, workers, faulty.Dead)
				if !faulty.Dead() {
					if workers == 1 {
						t.Fatalf("failpoint %d never fired (ops=%d)", n, faulty.Ops())
					}
					continue
				}

				mem.Crash()
				views := make(map[string]store.Adapter, len(fleetCrashTenants))
				var reopened []interface{ Close() error }
				for _, id := range fleetCrashTenants {
					db, err := store.OpenSharded(store.ShardedOptions{
						Dir: "/db/tenants/" + id, Shards: shards, SyncWrites: true, FS: mem,
					})
					if err != nil {
						t.Fatalf("failpoint %d: reopen tenant %s: %v", n, id, err)
					}
					reopened = append(reopened, db)
					views[id] = db
				}
				checkFleetRecovery(t, n, workers, views, acked)
				for _, db := range reopened {
					if err := db.Close(); err != nil {
						t.Fatalf("failpoint %d: close: %v", n, err)
					}
				}
			}
		})
	}
}
