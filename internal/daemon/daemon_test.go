package daemon

import (
	"bufio"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/device"
	"github.com/imcf/imcf/internal/simclock"
)

// flakyBinding actuates nothing and fails on demand, so tests can flip
// the daemon's health through real planning cycles.
type flakyBinding struct{ fail atomic.Bool }

func (b *flakyBinding) Apply(device.Descriptor, float64) error {
	if b.fail.Load() {
		return errors.New("injected binding failure")
	}
	return nil
}

func (b *flakyBinding) TurnOff(device.Descriptor) error {
	if b.fail.Load() {
		return errors.New("injected binding failure")
	}
	return nil
}

// TestDaemonE2E boots the full daemon on ephemeral ports, drives one
// simulated day of planning cycles over real HTTP, and checks the
// /metrics exposition stays consistent (considered == executed +
// dropped) and /healthz tracks step outcomes.
func TestDaemonE2E(t *testing.T) {
	clock := simclock.NewSimClock(time.Date(2021, time.April, 12, 0, 0, 0, 0, time.UTC))
	binding := &flakyBinding{}
	d, err := New(Options{
		Addr:            "127.0.0.1:0",
		MetricsAddr:     "127.0.0.1:0",
		Residence:       "prototype",
		Seed:            7,
		Mode:            "EP",
		WeeklyBudgetKWh: 165,
		Clock:           clock,
		Binding:         binding,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	d.Start()

	api := "http://" + d.APIAddr()
	obs := "http://" + d.MetricsAddr()

	// Fresh daemon: healthy before any cycle.
	if code := getStatus(t, obs+"/healthz"); code != http.StatusOK {
		t.Fatalf("initial /healthz = %d, want 200", code)
	}

	// Drive a simulated day: one planning cycle per hour.
	for hour := 0; hour < 24; hour++ {
		if code := postStatus(t, api+"/rest/plan/run"); code != http.StatusOK {
			t.Fatalf("hour %d: /rest/plan/run = %d", hour, code)
		}
		clock.Advance(time.Hour)
	}

	fams := scrapeMetrics(t, obs+"/metrics")
	considered := fams["imcf_rules_considered_total"]
	executed := fams["imcf_rules_executed_total"]
	dropped := fams["imcf_rules_dropped_total"]
	if considered == 0 {
		t.Fatal("imcf_rules_considered_total = 0 after a simulated day")
	}
	if executed+dropped != considered {
		t.Fatalf("rule accounting inconsistent: executed %v + dropped %v != considered %v",
			executed, dropped, considered)
	}
	if fams["imcf_controller_steps_total{outcome=\"ok\"}"] < 24 {
		t.Fatalf("ok steps = %v, want >= 24", fams["imcf_controller_steps_total{outcome=\"ok\"}"])
	}
	if fams["imcf_planner_window_seconds_count"] == 0 {
		t.Fatal("imcf_planner_window_seconds histogram recorded nothing")
	}
	if fams["imcf_healthy"] != 1 {
		t.Fatalf("imcf_healthy = %v, want 1", fams["imcf_healthy"])
	}

	// A failing binding turns the next cycle into a step error and the
	// daemon unhealthy; a later clean cycle recovers it.
	binding.fail.Store(true)
	clock.Advance(time.Hour)
	if code := postStatus(t, api+"/rest/plan/run"); code != http.StatusInternalServerError {
		t.Fatalf("failing cycle = %d, want 500", code)
	}
	if code := getStatus(t, obs+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after failure = %d, want 503", code)
	}
	if got := scrapeMetrics(t, obs+"/metrics")["imcf_healthy"]; got != 0 {
		t.Fatalf("imcf_healthy after failure = %v, want 0", got)
	}

	binding.fail.Store(false)
	clock.Advance(time.Hour)
	if code := postStatus(t, api+"/rest/plan/run"); code != http.StatusOK {
		t.Fatal("recovery cycle failed")
	}
	if code := getStatus(t, obs+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after recovery = %d, want 200", code)
	}

	// The error cycle must not have broken the accounting invariant:
	// finishStep records its rules even when actuation fails.
	fams = scrapeMetrics(t, obs+"/metrics")
	if fams["imcf_rules_executed_total"]+fams["imcf_rules_dropped_total"] != fams["imcf_rules_considered_total"] {
		t.Fatal("rule accounting inconsistent after error cycle")
	}
	if fams["imcf_controller_steps_total{outcome=\"error\"}"] < 1 {
		t.Fatal("error step not counted")
	}
}

// TestDaemonServesSpans checks the tracer debug endpoint responds.
func TestDaemonServesSpans(t *testing.T) {
	d, err := New(Options{
		Addr:            "127.0.0.1:0",
		MetricsAddr:     "127.0.0.1:0",
		Residence:       "flat",
		WeeklyBudgetKWh: 165,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	d.Start()
	if code := getStatus(t, "http://"+d.MetricsAddr()+"/debug/spans"); code != http.StatusOK {
		t.Fatalf("/debug/spans = %d", code)
	}
}

// TestDaemonRejectsBadOptions covers construction failures.
func TestDaemonRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Addr: "127.0.0.1:0", Residence: "castle", WeeklyBudgetKWh: 165}); err == nil {
		t.Error("unknown residence accepted")
	}
	if _, err := New(Options{Addr: "127.0.0.1:0", Residence: "flat", Mode: "psychic", WeeklyBudgetKWh: 165}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := New(Options{Addr: "127.0.0.1:0", Residence: "flat", WeeklyBudgetKWh: 165, StoreBackend: "etcd"}); err == nil {
		t.Error("unknown store backend accepted")
	}
}

// TestDaemonStoreBackends boots the daemon once per storage engine and
// checks the store actually serves: the MRT is persisted through the
// configured Adapter at construction time.
func TestDaemonStoreBackends(t *testing.T) {
	cases := []struct {
		name string
		opts func(o *Options)
	}{
		{"wal", func(o *Options) { o.StoreDir = t.TempDir() }},
		{"sharded", func(o *Options) {
			o.StoreDir = t.TempDir()
			o.StoreBackend = "sharded"
			o.StoreShards = 2
		}},
		{"mem", func(o *Options) { o.StoreBackend = "mem" }},
		{"disabled", func(o *Options) { o.StoreBackend = "wal" }}, // no dir: no store
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{
				Addr:            "127.0.0.1:0",
				Residence:       "flat",
				WeeklyBudgetKWh: 165,
				Logf:            t.Logf,
			}
			tc.opts(&opts)
			d, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close() //nolint:errcheck
			if tc.name == "disabled" {
				if d.store != nil {
					t.Fatal("store wired without a directory")
				}
				return
			}
			if d.store == nil {
				t.Fatal("store not wired")
			}
			// The controller persists the MRT on construction.
			if _, ok := d.store.Get("imcf/mrt"); !ok {
				t.Error("MRT not persisted through the backend")
			}
		})
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func postStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// scrapeMetrics fetches and parses a Prometheus text exposition into
// series name (with labels) → value.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q is not a text exposition", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := cutLast(line)
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		out[name] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// cutLast splits a metrics line at the final space, so label values
// containing spaces stay intact.
func cutLast(line string) (name, value string, ok bool) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", "", false
	}
	return line[:i], line[i+1:], true
}
