package daemon

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"github.com/imcf/imcf/internal/faultfs"
)

// TestDaemonDegradedMode is the degraded-mode e2e: boot a full daemon
// on a fault-injectable in-memory filesystem, make the "disk" return
// ENOSPC on WAL writes, and assert the daemon flips to read-only
// degraded mode (mutations 503 with Retry-After, reads still 200,
// /healthz reporting "degraded", metrics counting) instead of crashing
// — then heal the disk and watch full service resume on its own.
func TestDaemonDegradedMode(t *testing.T) {
	mem := faultfs.NewMemFS()
	var diskFull atomic.Bool
	inj := faultfs.InjectorFunc(func(op faultfs.FaultOp) *faultfs.Fault {
		if !diskFull.Load() || !strings.HasSuffix(op.Path, "store.wal") {
			return nil
		}
		if op.Op == faultfs.OpWrite || op.Op == faultfs.OpSync {
			return &faultfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})

	d, err := New(Options{
		Addr:            "127.0.0.1:0",
		MetricsAddr:     "127.0.0.1:0",
		Residence:       "prototype",
		Seed:            7,
		Mode:            "EP",
		WeeklyBudgetKWh: 165,
		StoreDir:        "/degraded/store",
		FS:              faultfs.NewFaulty(mem, inj),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck // test cleanup
	d.Start()

	api := "http://" + d.APIAddr()
	obs := "http://" + d.MetricsAddr()

	// Grab the active MRT so mutations can POST back a valid table —
	// any failure is then unambiguously the storage layer's.
	mrtJSON := getBodyOK(t, api+"/rest/mrt")

	postMRT := func() *http.Response {
		resp, err := http.Post(api+"/rest/mrt", "application/json", strings.NewReader(mrtJSON))
		if err != nil {
			t.Fatalf("POST /rest/mrt: %v", err)
		}
		return resp
	}

	// Healthy path: the mutation persists and returns 200.
	if resp := postMRT(); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy POST /rest/mrt = %d, want 200", drainStatus(resp))
	} else {
		resp.Body.Close()
	}

	// The disk fills. The first mutation fails server-side (500: the
	// table was accepted but could not be persisted) and the follow-up
	// probe flips the daemon into degraded mode.
	diskFull.Store(true)
	if resp := postMRT(); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("disk-full POST /rest/mrt = %d, want 500", drainStatus(resp))
	} else {
		resp.Body.Close()
	}
	if !d.Degraded() {
		t.Fatal("daemon not degraded after a persist failure and failing probe")
	}

	// While degraded: mutations are refused up front with 503 and a
	// Retry-After hint; the handler (and the dead disk) is never hit.
	resp := postMRT()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded POST /rest/mrt = %d, want 503", drainStatus(resp))
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("degraded 503 is missing Retry-After")
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "degraded") {
		t.Fatalf("degraded 503 body %q does not say so", body)
	}

	// Reads keep working: the controller still serves its in-memory
	// state.
	if code := getStatus(t, api+"/rest/mrt"); code != http.StatusOK {
		t.Fatalf("degraded GET /rest/mrt = %d, want 200", code)
	}
	if code := getStatus(t, api+"/rest/summary"); code != http.StatusOK {
		t.Fatalf("degraded GET /rest/summary = %d, want 200", code)
	}

	// /healthz reports degraded (503) with the reason.
	hresp, err := http.Get(obs + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz = %d, want 503", hresp.StatusCode)
	}
	var hz struct{ Status, Reason string }
	if err := json.Unmarshal(hbody, &hz); err != nil {
		t.Fatalf("unparseable /healthz body %q: %v", hbody, err)
	}
	if hz.Status != "degraded" || hz.Reason == "" {
		t.Fatalf("/healthz body = %q, want status degraded with a reason", hbody)
	}

	// The degradation is visible on /metrics.
	fams := scrapeMetrics(t, obs+"/metrics")
	if fams["imcf_daemon_degraded"] != 1 {
		t.Fatalf("imcf_daemon_degraded = %v, want 1", fams["imcf_daemon_degraded"])
	}
	if fams["imcf_daemon_degraded_entries_total"] != 1 {
		t.Fatalf("degraded entries = %v, want 1", fams["imcf_daemon_degraded_entries_total"])
	}
	if fams["imcf_daemon_degraded_rejected_total"] < 1 {
		t.Fatalf("degraded rejects = %v, want >= 1", fams["imcf_daemon_degraded_rejected_total"])
	}

	// The operator frees disk space. The next mutation's recovery probe
	// succeeds, degraded mode clears, and the request itself is served.
	diskFull.Store(false)
	if resp := postMRT(); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery POST /rest/mrt = %d, want 200", drainStatus(resp))
	} else {
		resp.Body.Close()
	}
	if d.Degraded() {
		t.Fatal("daemon still degraded after the disk recovered")
	}
	if code := getStatus(t, obs+"/healthz"); code != http.StatusOK {
		t.Fatalf("post-recovery /healthz = %d, want 200", code)
	}
	if fams := scrapeMetrics(t, obs+"/metrics"); fams["imcf_daemon_degraded"] != 0 {
		t.Fatalf("imcf_daemon_degraded = %v after recovery, want 0", fams["imcf_daemon_degraded"])
	}
}

// TestStatusRecorderForwardsCapabilities: the middleware's recorder
// must not mask the underlying writer's optional interfaces — both a
// direct http.Flusher assertion and the http.NewResponseController
// path (which relies on Unwrap) have to reach the real writer.
func TestStatusRecorderForwardsCapabilities(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: rec}
	if _, ok := interface{}(sr).(http.Flusher); !ok {
		t.Fatal("statusRecorder does not implement http.Flusher")
	}
	if err := http.NewResponseController(sr).Flush(); err != nil {
		t.Fatalf("Flush through ResponseController: %v", err)
	}
	if !rec.Flushed {
		t.Fatal("flush did not reach the underlying writer")
	}
	if sr.Unwrap() != http.ResponseWriter(rec) {
		t.Fatal("Unwrap does not return the wrapped writer")
	}
}

func getBodyOK(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func drainStatus(resp *http.Response) int {
	resp.Body.Close()
	return resp.StatusCode
}
