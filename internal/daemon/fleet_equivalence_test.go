package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/store"
)

// The tenant-equivalence harness is the tentpole proof obligation of
// multi-home tenancy: hosting a home as one tenant among N noisy
// neighbors must be OBSERVABLY IDENTICAL to hosting it alone. The
// harness runs the same workload twice — (a) through a single-home
// daemon, (b) through the same home as one tenant in a fleet of
// differently-seeded neighbors — at fleet worker counts 1 (the
// sequential reference order) and 8 (full concurrent fan-out), and
// asserts three equivalences:
//
//  1. bit-identical FNV-1a ledger hashes over the subject's decision
//     journal stream,
//  2. elementwise-identical journal events (and byte-identical
//     persisted decision logs on disk),
//  3. identical recovered store state after shutdown, reopening the
//     WAL from disk and comparing the subject's namespaced view
//     against the single-home unprefixed dump key by key.
//
// Because journal producers never stamp Event.Tenant and programmatic
// fleet cycles carry no HTTP trace IDs, every byte a tenant writes is
// a pure function of (residence, seed, clock, MRT edits) — which is
// exactly what this harness pins.

// equivSubjectID names the home hosted both ways. The neighbors carry
// IDs that sort both before and after it, so the subject's fleet
// position is mid-pack, not an endpoint.
const equivSubjectID = "mid.subject"

// equivStart is the shared simulated epoch: a Monday 00:00 so both
// runs cross identical planning slots.
var equivStart = time.Date(2026, time.March, 2, 0, 0, 0, 0, time.UTC)

// equivCycles is the workload length in hourly planning cycles; the
// mid-workload MRT mutation lands halfway through.
const equivCycles = 24

// runEquivWorkload drives d through the shared workload: equivCycles
// fleet cycles on a lockstep hourly clock, with an MRT edit on the
// subject's controller (and, in fleet runs, different edits on the
// neighbors) after cycle equivCycles/2.
func runEquivWorkload(t *testing.T, d *Daemon, clk *simclock.SimClock, subject string) {
	t.Helper()
	ctx := context.Background()
	for cycle := 0; cycle < equivCycles; cycle++ {
		if cycle == equivCycles/2 {
			mutateMRT(t, d, subject, 1)
			for _, id := range d.Tenants() {
				if id != subject {
					mutateMRT(t, d, id, 2)
				}
			}
		}
		if err := d.Fleet().Cycle(ctx); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		clk.Advance(time.Hour)
	}
}

// mutateMRT drops the last n meta-rules from the tenant's table — a
// deterministic runtime edit exercising SetMRT persistence mid-flight.
func mutateMRT(t *testing.T, d *Daemon, id string, n int) {
	t.Helper()
	ctrl := d.Tenant(id).Controller()
	mrt := ctrl.MRT()
	if len(mrt.Rules) <= n {
		t.Fatalf("tenant %s: too few rules (%d) to drop %d", id, len(mrt.Rules), n)
	}
	mrt.Rules = mrt.Rules[:len(mrt.Rules)-n]
	if err := ctrl.SetMRT(mrt); err != nil {
		t.Fatalf("tenant %s: SetMRT: %v", id, err)
	}
}

// ledgerHash is the FNV-1a hash over the JSON serialization of a
// journal's full event stream, oldest first — the "ledger hash" the
// equivalence gate compares bit for bit.
func ledgerHash(t *testing.T, j *journal.Journal) (uint64, []journal.Event) {
	t.Helper()
	evs := j.Recent(journal.Filter{})
	h := fnv.New64a()
	for _, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("marshal event: %v", err)
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return h.Sum64(), evs
}

// dumpAdapter snapshots every key an adapter view can see.
func dumpAdapter(a store.Adapter) map[string]string {
	out := make(map[string]string)
	for _, k := range a.Keys("") {
		v, _ := a.Get(k)
		out[k] = string(v)
	}
	return out
}

// TestFleetTenantEquivalence is the headline gate: one home, hosted
// solo and hosted as a fleet tenant, must produce the same bytes.
func TestFleetTenantEquivalence(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// (a) The single-home reference run.
			soloDir := t.TempDir()
			soloStore := filepath.Join(soloDir, "store")
			soloPersist := filepath.Join(soloDir, "persist")
			soloClk := simclock.NewSimClock(equivStart)
			solo, err := New(Options{
				Addr:            "127.0.0.1:0",
				Residence:       "prototype",
				Seed:            7,
				StoreDir:        soloStore,
				StoreBackend:    "wal",
				PersistDir:      soloPersist,
				WeeklyBudgetKWh: 165,
				Clock:           soloClk,
				Logf:            t.Logf,
			})
			if err != nil {
				t.Fatalf("single-home daemon: %v", err)
			}
			runEquivWorkload(t, solo, soloClk, DefaultTenantID)
			soloHash, soloEvents := ledgerHash(t, solo.Journal())
			if len(soloEvents) == 0 {
				t.Fatal("single-home run produced no journal events — workload is vacuous")
			}
			if err := solo.Close(); err != nil {
				t.Fatalf("close single-home daemon: %v", err)
			}

			// (b) The same home as one tenant among noisy neighbors:
			// different residences, seeds and budgets, all planning in the
			// same cycles through the same shared WAL store.
			fleetDir := t.TempDir()
			fleetStore := filepath.Join(fleetDir, "store")
			fleetPersist := filepath.Join(fleetDir, "persist")
			fleetClk := simclock.NewSimClock(equivStart)
			fd, err := New(Options{
				Addr: "127.0.0.1:0",
				Tenants: []TenantSpec{
					{ID: equivSubjectID, Residence: "prototype", Seed: 7, WeeklyBudgetKWh: 165},
					{ID: "aa-noisy1", Residence: "flat", Seed: 1001, WeeklyBudgetKWh: 90},
					{ID: "bb-noisy2", Residence: "house", Seed: 1002, WeeklyBudgetKWh: 300},
					{ID: "zz-noisy3", Residence: "prototype", Seed: 1003, WeeklyBudgetKWh: 120},
					{ID: "zz-noisy4", Residence: "flat", Seed: 1004, WeeklyBudgetKWh: 80},
				},
				FleetWorkers: workers,
				StoreDir:     fleetStore,
				StoreBackend: "wal",
				PersistDir:   fleetPersist,
				Clock:        fleetClk,
				Logf:         t.Logf,
			})
			if err != nil {
				t.Fatalf("fleet daemon: %v", err)
			}
			runEquivWorkload(t, fd, fleetClk, equivSubjectID)
			fleetHash, fleetEvents := ledgerHash(t, fd.Tenant(equivSubjectID).Journal())

			// Sanity: the neighbors really were noisy — they journaled
			// their own decisions into their own rings.
			for _, id := range []string{"aa-noisy1", "zz-noisy3"} {
				if fd.Tenant(id).Journal().Len() == 0 {
					t.Fatalf("neighbor %s journaled nothing — no noise to prove isolation against", id)
				}
			}
			if err := fd.Close(); err != nil {
				t.Fatalf("close fleet daemon: %v", err)
			}

			// Equivalence 1: bit-identical ledger hashes.
			if soloHash != fleetHash {
				t.Errorf("ledger hash diverged: single-home %#x, fleet tenant %#x", soloHash, fleetHash)
			}

			// Equivalence 2: elementwise-identical journal events.
			if len(soloEvents) != len(fleetEvents) {
				t.Fatalf("journal length diverged: single-home %d events, fleet tenant %d",
					len(soloEvents), len(fleetEvents))
			}
			for i := range soloEvents {
				a, _ := json.Marshal(soloEvents[i])
				b, _ := json.Marshal(fleetEvents[i])
				if string(a) != string(b) {
					t.Fatalf("event %d diverged:\n  single-home: %s\n  fleet:       %s", i, a, b)
				}
			}

			// ... and byte-identical persisted decision logs on disk.
			soloLog, err := os.ReadFile(filepath.Join(soloPersist, "decisions.jnl"))
			if err != nil {
				t.Fatalf("read single-home decision log: %v", err)
			}
			fleetLog, err := os.ReadFile(filepath.Join(fleetPersist, "tenants", equivSubjectID, "decisions.jnl"))
			if err != nil {
				t.Fatalf("read fleet decision log: %v", err)
			}
			if string(soloLog) != string(fleetLog) {
				t.Errorf("persisted decision logs diverged: single-home %d bytes, fleet %d bytes",
					len(soloLog), len(fleetLog))
			}

			// Equivalence 3: identical recovered store state. Reopen both
			// WALs cold and compare the subject's namespaced view against
			// the single-home unprefixed dump.
			sdb, err := store.Open(store.Options{Dir: soloStore, SyncWrites: true})
			if err != nil {
				t.Fatalf("reopen single-home store: %v", err)
			}
			defer sdb.Close() //nolint:errcheck
			fdb, err := store.Open(store.Options{Dir: fleetStore, SyncWrites: true})
			if err != nil {
				t.Fatalf("reopen fleet store: %v", err)
			}
			defer fdb.Close() //nolint:errcheck

			soloDump := dumpAdapter(sdb)
			subjectDump := dumpAdapter(store.Namespace(fdb, tenantStorePrefix(equivSubjectID)))
			if len(soloDump) == 0 {
				t.Fatal("single-home store recovered empty — workload persisted nothing")
			}
			if len(soloDump) != len(subjectDump) {
				t.Errorf("recovered store size diverged: single-home %d keys, fleet tenant %d",
					len(soloDump), len(subjectDump))
			}
			for k, v := range soloDump {
				got, ok := subjectDump[k]
				if !ok {
					t.Errorf("recovered store: fleet tenant missing key %q", k)
					continue
				}
				if got != v {
					t.Errorf("recovered store: key %q diverged:\n  single-home: %s\n  fleet:       %s", k, v, got)
				}
			}

			// The neighbors' keys live outside the subject's namespace —
			// present in the parent, invisible through the view.
			if n := len(fdb.Keys(tenantStorePrefix("aa-noisy1"))); n == 0 {
				t.Error("neighbor aa-noisy1 persisted nothing — shared-store noise missing")
			}
			if n := len(fdb.Keys("")); n <= len(subjectDump) {
				t.Errorf("parent store holds %d keys, want more than the subject's %d", n, len(subjectDump))
			}
		})
	}
}
