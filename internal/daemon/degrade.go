// Degraded mode: when the durable store reports a persistent media
// fault (ENOSPC, EIO), the daemon keeps serving reads but refuses
// mutations with 503 instead of crashing mid-plan or silently
// accepting writes it cannot persist. Classification is probe-based:
// store.Probe appends (and under SyncWrites fsyncs) a no-op WAL
// record, exercising the real write path. A probe also runs before
// each mutation while degraded, so the daemon heals itself the moment
// the disk recovers.
package daemon

import (
	"fmt"
	"net/http"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/metrics"
)

var (
	degradedGauge = metrics.NewGauge("imcf_daemon_degraded",
		"1 while the daemon is in read-only degraded mode (disk full or failing), else 0.")
	degradedEntries = metrics.NewCounter("imcf_daemon_degraded_entries_total",
		"Times the daemon entered read-only degraded mode.")
	degradedRejects = metrics.NewCounter("imcf_daemon_degraded_rejected_total",
		"Mutating requests rejected with 503 while degraded.")
)

// degradedRetryAfter is the Retry-After hint on degraded 503s; clients
// with capped backoff (internal/client) honor it.
const degradedRetryAfter = "5"

// Degraded reports whether the daemon is in read-only degraded mode.
func (d *Daemon) Degraded() bool {
	degraded, _ := d.health.Degraded()
	return degraded
}

// enterDegraded flips the daemon into read-only degraded mode.
func (d *Daemon) enterDegraded(err error) {
	if degraded, _ := d.health.Degraded(); degraded {
		return
	}
	d.health.SetDegraded(err.Error())
	degradedGauge.Set(1)
	degradedEntries.Inc()
	d.logf("daemon: entering read-only degraded mode: %v", err)
}

// exitDegraded restores full service after a successful probe.
func (d *Daemon) exitDegraded() {
	if degraded, _ := d.health.Degraded(); !degraded {
		return
	}
	d.health.ClearDegraded()
	degradedGauge.Set(0)
	d.logf("daemon: disk recovered, leaving degraded mode")
}

// noteError classifies an error from the serving or planning path:
// persistent media faults trip degraded mode, anything else is left to
// the regular health reporting. The classification is confirmed by a
// probe so a wrapped one-off error cannot degrade a healthy disk.
func (d *Daemon) noteError(err error) {
	if err == nil || d.store == nil || d.Degraded() {
		return
	}
	if !faultfs.IsDiskFault(err) {
		return
	}
	if perr := d.store.Probe(); perr != nil {
		d.enterDegraded(perr)
	}
}

// probeRecovery re-checks the write path while degraded; it reports
// whether the daemon is (now) fully serviceable.
func (d *Daemon) probeRecovery() bool {
	if d.store == nil {
		return true
	}
	if err := d.store.Probe(); err != nil {
		return false
	}
	d.exitDegraded()
	return true
}

// statusRecorder captures the response status for post-serve fault
// classification.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

// Unwrap exposes the wrapped writer to http.NewResponseController, so
// handlers behind degradeMiddleware keep the underlying writer's
// optional capabilities (http.Flusher, http.Hijacker, io.ReaderFrom).
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// Flush implements http.Flusher for handlers that type-assert the
// writer directly instead of going through a ResponseController.
func (sr *statusRecorder) Flush() {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// degradeMiddleware enforces read-only degraded mode around the REST
// API: while degraded, mutations are refused with 503 + Retry-After
// (after a recovery probe, so service resumes as soon as the disk
// does); reads always pass. After any server error on a mutation, the
// write path is probed and a confirmed disk fault flips the daemon
// into degraded mode.
func (d *Daemon) degradeMiddleware(next http.Handler) http.Handler {
	if d.store == nil {
		return next // no durable layer, nothing to degrade
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mutation := r.Method != http.MethodGet && r.Method != http.MethodHead
		if mutation && d.Degraded() && !d.probeRecovery() {
			degradedRejects.Inc()
			_, reason := d.health.Degraded()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", degradedRetryAfter)
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "{\"error\":%q}\n", "read-only degraded mode: "+reason) //nolint:errcheck // response committed
			return
		}
		sr := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sr, r)
		if mutation && sr.status >= http.StatusInternalServerError && !d.Degraded() {
			// The handler failed server-side; probe the write path. A
			// failing probe means no mutation can be persisted, whatever
			// the root cause — degrade rather than keep returning 500s.
			if err := d.store.Probe(); err != nil {
				d.enterDegraded(err)
			}
		}
	})
}
