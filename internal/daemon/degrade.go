// Degraded mode: when a tenant's durable store reports a persistent
// media fault (ENOSPC, EIO), that tenant keeps serving reads but
// refuses mutations with 503 instead of crashing mid-plan or silently
// accepting writes it cannot persist. Classification is probe-based:
// store.Probe appends (and under SyncWrites fsyncs) a no-op WAL
// record, exercising the real write path. A probe also runs before
// each mutation while degraded, so a tenant heals itself the moment
// the disk recovers.
//
// Degraded mode is tenant-scoped. Tenants on a shared physical backend
// (the wal and mem backends route every tenant through one log) will
// degrade together when the disk fails, because each tenant's probe
// exercises the same write path; sharded-backend tenants have their
// own shard directories, so one tenant's full disk or failing volume
// never 503s its neighbors. The default tenant also drives the legacy
// daemon-level gauges, keeping single-home dashboards unchanged.
package daemon

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
)

var (
	degradedGauge = metrics.NewGauge("imcf_daemon_degraded",
		"1 while the default tenant is in read-only degraded mode (disk full or failing), else 0.")
	degradedEntries = metrics.NewCounter("imcf_daemon_degraded_entries_total",
		"Times the default tenant entered read-only degraded mode.")
	degradedRejects = metrics.NewCounter("imcf_daemon_degraded_rejected_total",
		"Mutating requests rejected with 503 while the default tenant was degraded.")

	tenantDegradedGauge = metrics.NewGaugeVec("imcf_tenant_degraded",
		"1 while the tenant is in read-only degraded mode, else 0.", "tenant")
	tenantDegradedEntries = metrics.NewCounterVec("imcf_tenant_degraded_entries_total",
		"Times the tenant entered read-only degraded mode.", "tenant")
	tenantDegradedRejects = metrics.NewCounterVec("imcf_tenant_degraded_rejected_total",
		"Mutating requests rejected with 503 while the tenant was degraded.", "tenant")
	tenantHealthy = metrics.NewGaugeVec("imcf_tenant_healthy",
		"1 while the tenant's last planning cycle succeeded, else 0.", "tenant")
)

// degradedRetryAfter is the Retry-After hint on degraded 503s; clients
// with capped backoff (internal/client) honor it.
const degradedRetryAfter = "5"

// Degraded reports whether the tenant is in read-only degraded mode.
func (t *Tenant) Degraded() bool {
	degraded, _ := t.health.Degraded()
	return degraded
}

// Degraded reports whether the default tenant is in read-only degraded
// mode — the single-home daemon's historical surface.
func (d *Daemon) Degraded() bool { return d.def.Degraded() }

// enterDegraded flips the tenant into read-only degraded mode. trace,
// when known (the middleware path has the triggering request's
// traceparent; the fleet path does not), correlates the structured log
// record and the flight bundle with the request that exposed the
// fault.
func (t *Tenant) enterDegraded(err error, trace string) {
	if degraded, _ := t.health.Degraded(); degraded {
		return
	}
	t.health.SetDegraded(err.Error())
	tenantDegradedGauge.With(t.id).Set(1)
	tenantDegradedEntries.With(t.id).Inc()
	if t.isDefault {
		degradedGauge.Set(1)
		degradedEntries.Inc()
	}
	obs.L().LogAttrs(context.Background(), slog.LevelError,
		"tenant entering read-only degraded mode",
		slog.String("tenant", t.id),
		slog.String("trace", trace),
		obs.Error(err))
	if t.flight != nil {
		t.flight("degraded", trace)
	}
}

// exitDegraded restores full service after a successful probe.
func (t *Tenant) exitDegraded() {
	if degraded, _ := t.health.Degraded(); !degraded {
		return
	}
	t.health.ClearDegraded()
	tenantDegradedGauge.With(t.id).Set(0)
	if t.isDefault {
		degradedGauge.Set(0)
	}
	t.logf("daemon: tenant %s disk recovered, leaving degraded mode", t.id)
}

// noteError classifies an error from the tenant's serving or planning
// path: persistent media faults trip degraded mode, anything else is
// left to the regular health reporting. The classification is confirmed
// by a probe so a wrapped one-off error cannot degrade a healthy disk.
func (t *Tenant) noteError(err error) {
	if err == nil || t.store == nil || t.Degraded() {
		return
	}
	if !faultfs.IsDiskFault(err) {
		return
	}
	if perr := t.store.Probe(); perr != nil {
		t.enterDegraded(perr, "")
	}
}

// probeRecovery re-checks the write path while degraded; it reports
// whether the tenant is (now) fully serviceable.
func (t *Tenant) probeRecovery() bool {
	if t.store == nil {
		return true
	}
	if err := t.store.Probe(); err != nil {
		return false
	}
	t.exitDegraded()
	return true
}

// statusRecorder captures the response status for post-serve fault
// classification.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

// Unwrap exposes the wrapped writer to http.NewResponseController, so
// handlers behind degradeMiddleware keep the underlying writer's
// optional capabilities (http.Flusher, http.Hijacker, io.ReaderFrom).
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// Flush implements http.Flusher for handlers that type-assert the
// writer directly instead of going through a ResponseController.
func (sr *statusRecorder) Flush() {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// degradeMiddleware enforces read-only degraded mode around one
// tenant's REST API: while degraded, mutations are refused with 503 +
// Retry-After (after a recovery probe, so service resumes as soon as
// the disk does); reads always pass. After any server error on a
// mutation, the write path is probed and a confirmed disk fault flips
// the tenant into degraded mode.
func (t *Tenant) degradeMiddleware(next http.Handler) http.Handler {
	if t.store == nil {
		return next // no durable layer, nothing to degrade
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mutation := r.Method != http.MethodGet && r.Method != http.MethodHead
		if mutation && t.Degraded() && !t.probeRecovery() {
			tenantDegradedRejects.With(t.id).Inc()
			if t.isDefault {
				degradedRejects.Inc()
			}
			_, reason := t.health.Degraded()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", degradedRetryAfter)
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "{\"error\":%q}\n", "read-only degraded mode: "+reason) //nolint:errcheck // response committed
			return
		}
		sr := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sr, r)
		if mutation && sr.status >= http.StatusInternalServerError && !t.Degraded() {
			// The handler failed server-side; probe the write path. A
			// failing probe means no mutation can be persisted, whatever
			// the root cause — degrade rather than keep returning 500s.
			if err := t.store.Probe(); err != nil {
				t.enterDegraded(err, requestTrace(r))
			}
		}
	})
}
