package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/simclock"
)

func TestParseTenantID(t *testing.T) {
	valid := []string{
		"home", "h1", "a", "A", "9",
		"flat-12.b_3", "x.y.z",
		strings.Repeat("a", 64),
	}
	for _, id := range valid {
		if err := ParseTenantID(id); err != nil {
			t.Errorf("ParseTenantID(%q) = %v, want nil", id, err)
		}
	}
	invalid := []string{
		"", ".", "..", ".hidden", "-x", "_x",
		"a/b", "../a", "a/..", `a\b`, "a b", "a\tb", "a\x00b",
		"café", "家", "a%2fb?" /* '%' and '?' */, "a\nb",
		strings.Repeat("a", 65),
	}
	for _, id := range invalid {
		if err := ParseTenantID(id); err == nil {
			t.Errorf("ParseTenantID(%q) accepted a hostile ID", id)
		}
	}
}

func TestDaemonRejectsBadTenants(t *testing.T) {
	base := Options{Addr: "127.0.0.1:0", Residence: "flat", WeeklyBudgetKWh: 165, Logf: t.Logf}
	bad := base
	bad.Tenants = []TenantSpec{{ID: "../etc"}}
	if _, err := New(bad); err == nil {
		t.Error("hostile tenant ID accepted")
	}
	dup := base
	dup.Tenants = []TenantSpec{{ID: "h1"}, {ID: "h1"}}
	if _, err := New(dup); err == nil {
		t.Error("duplicate tenant ID accepted")
	}
	res := base
	res.Tenants = []TenantSpec{{ID: "h1", Residence: "castle"}}
	if _, err := New(res); err == nil {
		t.Error("unknown tenant residence accepted")
	}
	mode := base
	mode.Tenants = []TenantSpec{{ID: "h1", Mode: "psychic"}}
	if _, err := New(mode); err == nil {
		t.Error("unknown tenant mode accepted")
	}
}

// TestDaemonMultiTenantRouting boots a three-home daemon and checks the
// tenant-scoped REST surface: /t/{home}/... reaches the named tenant,
// legacy routes alias the default (first-declared) tenant, unknown or
// hostile homes 404, and each tenant's journal only holds its own
// cycles.
func TestDaemonMultiTenantRouting(t *testing.T) {
	clock := simclock.NewSimClock(time.Date(2021, time.April, 12, 0, 0, 0, 0, time.UTC))
	d, err := New(Options{
		Addr:        "127.0.0.1:0",
		MetricsAddr: "127.0.0.1:0",
		Tenants: []TenantSpec{
			{ID: "h2", Residence: "flat", Seed: 2},
			{ID: "h1", Residence: "prototype", Seed: 1},
			{ID: "h3", Residence: "flat", Seed: 3},
		},
		Mode:            "EP",
		WeeklyBudgetKWh: 165,
		StoreBackend:    "mem",
		Clock:           clock,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck // test cleanup
	d.Start()
	api := "http://" + d.APIAddr()
	obs := "http://" + d.MetricsAddr()

	if got, want := d.Tenants(), []string{"h1", "h2", "h3"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Tenants() = %v, want %v", got, want)
	}
	if d.Tenant("h2") == nil || d.Tenant("nope") != nil {
		t.Fatal("Tenant lookup broken")
	}

	// Each tenant plans over its own route, across a simulated morning
	// so the planner sees active rules and journals verdicts.
	for hour := 0; hour < 8; hour++ {
		for _, id := range []string{"h1", "h2", "h3"} {
			if code := postStatus(t, api+"/t/"+id+"/rest/plan/run"); code != http.StatusOK {
				t.Fatalf("hour %d: /t/%s/rest/plan/run = %d", hour, id, code)
			}
		}
		clock.Advance(time.Hour)
	}
	// The legacy route aliases the default tenant (first declared: h2).
	if code := postStatus(t, api+"/rest/plan/run"); code != http.StatusOK {
		t.Fatalf("legacy /rest/plan/run = %d", code)
	}
	if d.Controller() != d.Tenant("h2").Controller() {
		t.Fatal("legacy Controller() is not the default tenant's")
	}

	// Unknown homes 404 without touching any tenant.
	if code := postStatus(t, api+"/t/nope/rest/plan/run"); code != http.StatusNotFound {
		t.Errorf("POST /t/nope/rest/plan/run = %d, want 404", code)
	}
	// Traversal-style paths are either cleaned away by URL
	// normalization or rejected; whatever the mechanism, they must
	// never plan as a tenant.
	for _, path := range []string{
		"/t/../rest/plan/run",
		"/t/%2e%2e/rest/plan/run",
		"/t/h1%2f../rest/plan/run",
		"/t/h1/../h2/rest/plan/run",
	} {
		if code := postStatus(t, api+path); code == http.StatusOK {
			t.Errorf("POST %s = 200; hostile path reached a tenant", path)
		}
	}

	// Journal isolation: h2 stepped twice (tenant route + legacy alias),
	// the others once; every event in a tenant's ring is its own.
	if n1, n2 := d.Tenant("h1").Journal().Len(), d.Tenant("h2").Journal().Len(); n1 == 0 || n2 == 0 {
		t.Fatalf("journals empty after cycles: h1=%d h2=%d", n1, n2)
	}
	var evs []journal.Event
	if err := json.Unmarshal([]byte(getBodyOK(t, obs+"/debug/decisions?tenant=h1")), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("/debug/decisions?tenant=h1 returned nothing")
	}
	for _, ev := range evs {
		if ev.Tenant != "h1" {
			t.Fatalf("tenant-filtered event decorated %q", ev.Tenant)
		}
	}
	var all []journal.Event
	if err := json.Unmarshal([]byte(getBodyOK(t, obs+"/debug/decisions")), &all); err != nil {
		t.Fatal(err)
	}
	tenantsSeen := map[string]bool{}
	for _, ev := range all {
		tenantsSeen[ev.Tenant] = true
	}
	for _, id := range []string{"h1", "h2", "h3"} {
		if !tenantsSeen[id] {
			t.Errorf("merged /debug/decisions is missing tenant %s", id)
		}
	}

	// The fleet gauge reports the fleet size.
	if fams := scrapeMetrics(t, obs+"/metrics"); fams["imcf_fleet_tenants"] != 3 {
		t.Errorf("imcf_fleet_tenants = %v, want 3", fams["imcf_fleet_tenants"])
	}
}

// TestDaemonMultiTenantStores pins the backend-dependent namespace
// layout: wal/mem route tenants through one shared store under
// "t/<id>/" prefixes; sharded gives each tenant its own shard
// directory.
func TestDaemonMultiTenantStores(t *testing.T) {
	tenants := []TenantSpec{
		{ID: "h1", Residence: "flat", Seed: 1},
		{ID: "h2", Residence: "flat", Seed: 2},
	}
	t.Run("wal", func(t *testing.T) {
		d, err := New(Options{
			Addr: "127.0.0.1:0", Tenants: tenants,
			WeeklyBudgetKWh: 165, StoreDir: t.TempDir(), Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close() //nolint:errcheck // test cleanup
		for _, id := range []string{"h1", "h2"} {
			if _, ok := d.store.Get("t/" + id + "/imcf/mrt"); !ok {
				t.Errorf("shared store missing t/%s/imcf/mrt", id)
			}
			if _, ok := d.Tenant(id).Store().Get("imcf/mrt"); !ok {
				t.Errorf("tenant %s view missing imcf/mrt", id)
			}
		}
		// Cross-tenant invisibility through the views.
		if keys := d.Tenant("h1").Store().Keys(""); len(keys) != 1 || keys[0] != "imcf/mrt" {
			t.Errorf("h1 view keys = %v", keys)
		}
	})
	t.Run("sharded", func(t *testing.T) {
		dir := t.TempDir()
		d, err := New(Options{
			Addr: "127.0.0.1:0", Tenants: tenants,
			WeeklyBudgetKWh: 165, StoreDir: dir,
			StoreBackend: "sharded", StoreShards: 2, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close() //nolint:errcheck // test cleanup
		for _, id := range []string{"h1", "h2"} {
			if _, err := os.Stat(filepath.Join(dir, "tenants", id, "SHARDS")); err != nil {
				t.Errorf("tenant %s shard dir: %v", id, err)
			}
			if _, ok := d.Tenant(id).Store().Get("imcf/mrt"); !ok {
				t.Errorf("tenant %s store missing imcf/mrt", id)
			}
		}
	})
}

// TestDaemonFleetCycle drives explicit fleet cycles and checks every
// tenant steps each cycle, concurrently when workers allow.
func TestDaemonFleetCycle(t *testing.T) {
	clock := simclock.NewSimClock(time.Date(2021, time.April, 12, 0, 0, 0, 0, time.UTC))
	d, err := New(Options{
		Addr: "127.0.0.1:0",
		Tenants: []TenantSpec{
			{ID: "h1", Residence: "flat", Seed: 1},
			{ID: "h2", Residence: "flat", Seed: 2},
			{ID: "h3", Residence: "prototype", Seed: 3},
			{ID: "h4", Residence: "flat", Seed: 4},
		},
		FleetWorkers:    4,
		WeeklyBudgetKWh: 165,
		Clock:           clock,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck // test cleanup

	if d.Fleet().Len() != 4 || d.Fleet().Workers() != 4 {
		t.Fatalf("fleet = %d tenants × %d workers", d.Fleet().Len(), d.Fleet().Workers())
	}
	for cycle := 0; cycle < 3; cycle++ {
		if err := d.Fleet().Cycle(context.Background()); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		clock.Advance(time.Hour)
	}
	for _, id := range d.Tenants() {
		if got := len(d.Tenant(id).Controller().History()); got != 3 {
			t.Errorf("tenant %s steps = %d, want 3", id, got)
		}
	}
}

// TestDaemonTenantDegradedIsolation is the tenant-aware degraded-mode
// e2e: on the sharded backend each home owns its shard directory, so
// one tenant's dead disk 503s that tenant only — its neighbor keeps
// accepting mutations — and the per-tenant metrics say which home
// degraded. Healing the disk heals only that tenant's mode.
func TestDaemonTenantDegradedIsolation(t *testing.T) {
	mem := faultfs.NewMemFS()
	var diskFull atomic.Bool
	inj := faultfs.InjectorFunc(func(op faultfs.FaultOp) *faultfs.Fault {
		// Only h2's shard directory fails.
		if !diskFull.Load() || !strings.Contains(op.Path, "/tenants/h2/") {
			return nil
		}
		if op.Op == faultfs.OpWrite || op.Op == faultfs.OpSync {
			return &faultfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})

	d, err := New(Options{
		Addr:        "127.0.0.1:0",
		MetricsAddr: "127.0.0.1:0",
		Tenants: []TenantSpec{
			{ID: "h1", Residence: "flat", Seed: 1},
			{ID: "h2", Residence: "flat", Seed: 2},
		},
		WeeklyBudgetKWh: 165,
		StoreDir:        "/fleet/store",
		StoreBackend:    "sharded",
		StoreShards:     2,
		FS:              faultfs.NewFaulty(mem, inj),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck // test cleanup
	d.Start()
	api := "http://" + d.APIAddr()
	obs := "http://" + d.MetricsAddr()

	mrtJSON := getBodyOK(t, api+"/t/h2/rest/mrt")
	post := func(id string) int {
		resp, err := http.Post(api+"/t/"+id+"/rest/mrt", "application/json",
			strings.NewReader(mrtJSON))
		if err != nil {
			t.Fatalf("POST /t/%s/rest/mrt: %v", id, err)
		}
		return drainStatus(resp)
	}

	if code := post("h2"); code != http.StatusOK {
		t.Fatalf("healthy POST = %d, want 200", code)
	}

	// h2's disk fills: first mutation 500s and trips degraded mode.
	diskFull.Store(true)
	if code := post("h2"); code != http.StatusInternalServerError {
		t.Fatalf("disk-full POST = %d, want 500", code)
	}
	if !d.Tenant("h2").Degraded() {
		t.Fatal("h2 not degraded after persist failure and failing probe")
	}
	if code := post("h2"); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded POST = %d, want 503", code)
	}

	// The neighbor is untouched: h1 still mutates, and the daemon-level
	// (default tenant) degraded state stays clear.
	if d.Tenant("h1").Degraded() || d.Degraded() {
		t.Fatal("healthy tenant degraded by neighbor's disk")
	}
	if code := post("h1"); code != http.StatusOK {
		t.Fatalf("neighbor POST = %d, want 200", code)
	}

	fams := scrapeMetrics(t, obs+"/metrics")
	if fams[`imcf_tenant_degraded{tenant="h2"}`] != 1 {
		t.Errorf("imcf_tenant_degraded{h2} = %v, want 1", fams[`imcf_tenant_degraded{tenant="h2"}`])
	}
	if fams[`imcf_tenant_degraded{tenant="h1"}`] == 1 {
		t.Error("imcf_tenant_degraded{h1} = 1, want 0")
	}
	if fams["imcf_daemon_degraded"] != 0 {
		t.Errorf("imcf_daemon_degraded = %v, want 0 (default tenant h1 is healthy)",
			fams["imcf_daemon_degraded"])
	}

	// The disk recovers; h2's next mutation probes, heals, and serves.
	diskFull.Store(false)
	if code := post("h2"); code != http.StatusOK {
		t.Fatalf("post-recovery POST = %d, want 200", code)
	}
	if d.Tenant("h2").Degraded() {
		t.Fatal("h2 still degraded after recovery")
	}
}
