// Package daemon assembles and serves a complete IMCF Local Controller
// process: residence construction, optional durable store and
// measurement persistence, optional HTTP device emulators, the cron-
// scheduled Energy Planner, the openHAB-style REST API, and the
// observability endpoints (/metrics, /healthz, /debug/spans).
//
// It is the testable core of cmd/imcfd: tests boot a Daemon on
// ephemeral ports (":0"), drive it over real HTTP, and inspect the
// bound addresses via APIAddr/MetricsAddr.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/devicesim"
	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/firewall"
	"github.com/imcf/imcf/internal/home"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/persistence"
	"github.com/imcf/imcf/internal/rules"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/store"
	"github.com/imcf/imcf/internal/units"
)

// DefaultJournalCap bounds the in-memory decision journal when Options
// leaves JournalCap at zero.
const DefaultJournalCap = journal.DefaultCap

// shutdownGrace bounds how long Close waits for in-flight requests to
// drain before force-closing the HTTP servers.
const shutdownGrace = 5 * time.Second

// Options configures a daemon. The zero value is not runnable: Addr and
// Residence are required.
type Options struct {
	// Addr is the REST API listen address (":0" for an ephemeral port).
	Addr string
	// MetricsAddr serves /metrics, /healthz and /debug/spans; empty
	// disables the observability listener.
	MetricsAddr string
	// Residence names the built-in layout: prototype, flat or house.
	Residence string
	// Seed parameterizes the residence's ambient traces.
	Seed uint64
	// StoreDir enables the KV store; empty disables it (except for the
	// mem backend, which needs no directory).
	StoreDir string
	// StoreBackend selects the storage engine: "wal" (default, the
	// single-log group-commit store), "sharded" (N independent WAL
	// shards hashed by key) or "mem" (ephemeral, no disk).
	StoreBackend string
	// StoreShards sets the shard count for the sharded backend; 0
	// adopts the directory's manifest (or store.DefaultShards when
	// fresh). Ignored by the other backends.
	StoreShards int
	// PersistDir enables measurement persistence; empty disables.
	PersistDir string
	// MRTPath overrides the residence's Meta-Rule Table with a file in
	// the textual format.
	MRTPath string
	// Mode is EP (default when empty), IFTTT or manual.
	Mode string
	// Interval schedules the planner; <= 0 disables the cron so tests
	// can drive cycles explicitly over /rest/plan/run.
	Interval time.Duration
	// WeeklyBudgetKWh is the weekly energy allowance.
	WeeklyBudgetKWh float64
	// Emulate starts loopback HTTP device emulators and routes all
	// actuation through them (and the firewall).
	Emulate bool
	// Clock overrides the wall clock (tests use simclock.NewSimClock).
	Clock simclock.Clock
	// Binding overrides device actuation (ignored with Emulate; tests
	// inject failing bindings to exercise health reporting).
	Binding controller.Binding
	// JournalCap bounds the decision-provenance journal ring; 0 means
	// DefaultJournalCap, negative disables journaling entirely.
	JournalCap int
	// JournalSyncEvery sets the decision journal's fsync cadence: every
	// N events, 0 for every event, negative for only on shutdown
	// (imcfd -journal-sync).
	JournalSyncEvery int
	// FS overrides the file layer under the store and the decision
	// journal (tests inject faultfs fakes to exercise crash recovery
	// and degraded mode); nil uses the real filesystem.
	FS faultfs.FS
	// Logf overrides log.Printf; nil uses the standard logger.
	Logf func(format string, args ...any)
}

// Daemon is a fully wired Local Controller process.
type Daemon struct {
	ctrl    *controller.Controller
	health  *metrics.Health
	journal *journal.Journal
	store   store.Adapter // nil when no store is configured
	logf    func(string, ...any)

	apiLn     net.Listener
	metricsLn net.Listener
	apiSrv    *http.Server
	metricSrv *http.Server

	cron      *controller.Cron
	stopSched func()

	mu      sync.Mutex
	closed  bool
	closers []func() error // shutdown hooks, run in reverse order
}

// New builds the daemon and binds its listeners, but does not serve
// yet; call Serve. On error, everything partially constructed is torn
// down.
func New(opts Options) (_ *Daemon, err error) {
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	d := &Daemon{logf: logf, health: metrics.NewHealth(metrics.HealthyGauge)}
	defer func() {
		if err != nil {
			d.Close() //nolint:errcheck // already failing
		}
	}()

	var res *home.Residence
	switch opts.Residence {
	case "prototype":
		res, err = home.Prototype(opts.Seed)
	case "flat":
		res, err = home.Flat(opts.Seed)
	case "house":
		res, err = home.House(opts.Seed)
	default:
		return nil, fmt.Errorf("daemon: unknown residence %q", opts.Residence)
	}
	if err != nil {
		return nil, err
	}
	if opts.MRTPath != "" {
		src, err := os.ReadFile(opts.MRTPath)
		if err != nil {
			return nil, err
		}
		mrt, err := rules.ParseMRT(string(src))
		if err != nil {
			return nil, err
		}
		res.MRT = mrt
		if err := res.Validate(); err != nil {
			return nil, fmt.Errorf("daemon: MRT from %s: %w", opts.MRTPath, err)
		}
		logf("loaded %d meta-rules from %s", len(mrt.Rules), opts.MRTPath)
	}

	if opts.JournalCap >= 0 {
		jcap := opts.JournalCap
		if jcap == 0 {
			jcap = DefaultJournalCap
		}
		d.journal = journal.New(jcap)
	}

	cfg := controller.Config{
		Residence:    res,
		WeeklyBudget: units.Energy(opts.WeeklyBudgetKWh),
		Clock:        opts.Clock,
		Health:       d.health,
		Binding:      opts.Binding,
		Journal:      d.journal,
	}
	switch opts.Mode {
	case "EP", "ep", "":
		cfg.Mode = controller.ModeEP
	case "IFTTT", "ifttt":
		cfg.Mode = controller.ModeIFTTT
	case "manual":
		cfg.Mode = controller.ModeManual
	default:
		return nil, fmt.Errorf("daemon: unknown mode %q", opts.Mode)
	}

	db, err := openStoreBackend(opts)
	if err != nil {
		return nil, err
	}
	if db != nil {
		d.closers = append(d.closers, db.Close)
		cfg.Store = db
		d.store = db
	}
	if opts.PersistDir != "" {
		svc, err := persistence.Open(opts.PersistDir)
		if err != nil {
			return nil, err
		}
		d.closers = append(d.closers, svc.Close)
		cfg.Persistence = svc
		logf("recording measurements to %s", opts.PersistDir)

		if d.journal != nil {
			jl, err := persistence.OpenJournalOpts(opts.PersistDir,
				persistence.JournalOptions{SyncEvery: opts.JournalSyncEvery, FS: opts.FS})
			if err != nil {
				return nil, err
			}
			d.closers = append(d.closers, jl.Close)
			// Replay first so a restarted daemon can still explain
			// decisions made before the restart, then sink so new
			// verdicts append to the same log.
			n, err := jl.Replay(d.journal.Preload)
			if err != nil {
				return nil, fmt.Errorf("daemon: replay decision journal: %w", err)
			}
			if n > 0 {
				logf("replayed %d journaled decisions from %s", n, jl.Path())
			}
			d.journal.SetSink(jl)
		}
	}

	if opts.Emulate {
		fw := firewall.New(opts.Clock)
		endpoints := make(map[string]string)
		for _, z := range res.Zones {
			dk, err := devicesim.StartDaikin()
			if err != nil {
				return nil, err
			}
			d.closers = append(d.closers, dk.Close)
			endpoints[z.HVAC.ID] = dk.URL()
			logf("emulated %s at %s (LAN addr %s)", z.HVAC.ID, dk.URL(), z.HVAC.Addr)

			hue, err := devicesim.StartHue()
			if err != nil {
				return nil, err
			}
			d.closers = append(d.closers, hue.Close)
			endpoints[z.Light.ID] = hue.URL()
			logf("emulated %s at %s (LAN addr %s)", z.Light.ID, hue.URL(), z.Light.Addr)
		}
		cfg.Firewall = fw
		cfg.Binding = &controller.HTTPBinding{Endpoints: endpoints, Firewall: fw}
	}

	d.ctrl, err = controller.New(cfg)
	if err != nil {
		return nil, err
	}

	if opts.Interval > 0 {
		d.cron = controller.NewCron(opts.Clock)
		d.stopSched = d.ctrl.Schedule(d.cron, opts.Interval, func(err error) {
			logf("EP cycle: %v", err)
			// A planner cycle that died on a full or failing disk must
			// degrade the daemon, not crash it mid-plan.
			d.noteError(err)
		})
		logf("EP scheduled every %v for %q (weekly budget %.0f kWh)",
			opts.Interval, opts.Residence, opts.WeeklyBudgetKWh)
	}

	d.apiLn, err = net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	d.apiSrv = newHTTPServer(d.degradeMiddleware(controller.API(d.ctrl)))
	if opts.MetricsAddr != "" {
		d.metricsLn, err = net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			return nil, err
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metrics.Handler())
		mux.Handle("GET /healthz", d.health.Handler())
		mux.Handle("GET /debug/spans", metrics.DefaultTracer().Handler())
		mux.Handle("GET /debug/exemplars", metrics.ExemplarHandler())
		if d.journal != nil {
			mux.Handle("GET /debug/decisions", d.journal.Handler())
			mux.HandleFunc("GET /debug/trace/{id}", d.traceHandler)
		}
		d.metricSrv = newHTTPServer(mux)
	}
	return d, nil
}

// openStoreBackend builds the Adapter selected by StoreBackend. It
// returns (nil, nil) — no store at all — when the configuration
// disables persistence, so callers must check for nil before wiring;
// returning a typed-nil Adapter here would defeat those checks.
func openStoreBackend(opts Options) (store.Adapter, error) {
	switch opts.StoreBackend {
	case "", "wal":
		if opts.StoreDir == "" {
			return nil, nil
		}
		return store.Open(store.Options{Dir: opts.StoreDir, SyncWrites: true, FS: opts.FS})
	case "sharded":
		if opts.StoreDir == "" {
			return nil, nil
		}
		return store.OpenSharded(store.ShardedOptions{
			Dir:        opts.StoreDir,
			Shards:     opts.StoreShards,
			SyncWrites: true,
			FS:         opts.FS,
		})
	case "mem":
		return store.OpenMem(), nil
	default:
		return nil, fmt.Errorf("daemon: unknown store backend %q", opts.StoreBackend)
	}
}

// newHTTPServer applies the daemon's server hardening: header and body
// read deadlines so a stalled or malicious client cannot pin a
// connection open forever, and an idle timeout to reap keep-alives.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// traceHandler serves GET /debug/trace/{id}: everything the daemon
// knows about one trace — its spans (from the in-memory tracer ring)
// and the planner decisions it caused (from the journal).
func (d *Daemon) traceHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := metrics.DefaultTracer().ByTrace(id)
	decisions := d.journal.Recent(journal.Filter{Trace: id})
	if spans == nil {
		spans = []metrics.SpanRecord{}
	}
	if decisions == nil {
		decisions = []journal.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // response committed
		"trace":     id,
		"spans":     spans,
		"decisions": decisions,
	})
}

// Controller exposes the wired Local Controller.
func (d *Daemon) Controller() *controller.Controller { return d.ctrl }

// Journal exposes the decision-provenance journal, or nil when
// journaling is disabled (Options.JournalCap < 0).
func (d *Daemon) Journal() *journal.Journal { return d.journal }

// Health exposes the daemon's health state (wired to /healthz).
func (d *Daemon) Health() *metrics.Health { return d.health }

// APIAddr returns the REST listener's bound address.
func (d *Daemon) APIAddr() string { return d.apiLn.Addr().String() }

// MetricsAddr returns the observability listener's bound address, or ""
// when disabled.
func (d *Daemon) MetricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

// Serve blocks serving both listeners until Close is called. It returns
// the first serve error, or nil on clean shutdown.
func (d *Daemon) Serve() error {
	errc := make(chan error, 2)
	go func() { errc <- d.apiSrv.Serve(d.apiLn) }()
	n := 1
	if d.metricSrv != nil {
		n = 2
		go func() { errc <- d.metricSrv.Serve(d.metricsLn) }()
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && first == nil {
			first = err
			d.Close() //nolint:errcheck // tearing down after serve error
		}
	}
	return first
}

// Start runs Serve on a goroutine and returns immediately; serve errors
// go to the daemon's logger. Tests use Start + Close.
func (d *Daemon) Start() {
	go func() {
		if err := d.Serve(); err != nil {
			d.logf("daemon: serve: %v", err)
		}
	}()
}

// Close shuts the daemon down: scheduler, HTTP servers, then the
// shutdown hooks (emulators, persistence, store) in reverse order. It
// is idempotent.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()

	if d.stopSched != nil {
		d.stopSched()
	}
	if d.cron != nil {
		d.cron.Stop()
	}
	// Drain in-flight requests before tearing down the closers they may
	// depend on (store, persistence); force-close whatever is still
	// running when the grace period expires.
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	var firstErr error
	shutdown := func(srv *http.Server) {
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close() //nolint:errcheck // force close after drain timeout
			if firstErr == nil && !errors.Is(err, context.DeadlineExceeded) {
				firstErr = err
			}
		}
	}
	if d.apiSrv != nil {
		shutdown(d.apiSrv)
	} else if d.apiLn != nil {
		d.apiLn.Close() //nolint:errcheck // listener without server
	}
	if d.metricSrv != nil {
		shutdown(d.metricSrv)
	} else if d.metricsLn != nil {
		d.metricsLn.Close() //nolint:errcheck // listener without server
	}
	for i := len(d.closers) - 1; i >= 0; i-- {
		if err := d.closers[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
