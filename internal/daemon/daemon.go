// Package daemon assembles and serves a complete IMCF Local Controller
// process hosting one or many homes: per-tenant residence construction,
// optional durable store and measurement persistence (namespaced per
// tenant), optional HTTP device emulators, the fleet scheduler fanning
// cron-driven Energy Planner cycles over a bounded worker pool, the
// openHAB-style REST API (tenant-scoped under /t/{home}/, with legacy
// single-home routes aliased to the default tenant), and the
// observability endpoints (/metrics, /healthz, /debug/spans).
//
// It is the testable core of cmd/imcfd: tests boot a Daemon on
// ephemeral ports (":0"), drive it over real HTTP, and inspect the
// bound addresses via APIAddr/MetricsAddr.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/imcf/imcf/internal/controller"
	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/fleet"
	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/obs"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/store"
)

// DefaultJournalCap bounds the in-memory decision journal when Options
// leaves JournalCap at zero.
const DefaultJournalCap = journal.DefaultCap

// shutdownGrace bounds how long Close waits for in-flight requests to
// drain before force-closing the HTTP servers.
const shutdownGrace = 5 * time.Second

// Options configures a daemon. The zero value is not runnable: Addr and
// Residence are required.
type Options struct {
	// Addr is the REST API listen address (":0" for an ephemeral port).
	Addr string
	// MetricsAddr serves /metrics, /healthz and /debug/spans; empty
	// disables the observability listener.
	MetricsAddr string
	// Residence names the built-in layout: prototype, flat or house.
	Residence string
	// Seed parameterizes the residence's ambient traces.
	Seed uint64
	// Tenants declares the homes a multi-tenant daemon hosts; empty
	// means one single-home tenant built from the legacy fields above
	// (ID DefaultTenantID, no store prefix, legacy directory layout).
	// The first spec is the default tenant serving the legacy
	// un-prefixed routes; every tenant is also served under
	// /t/<ID>/....
	Tenants []TenantSpec
	// FleetWorkers bounds how many tenants plan concurrently per fleet
	// cycle; <= 0 means 1 (sequential, the bit-identical reference
	// order).
	FleetWorkers int
	// StoreDir enables the KV store; empty disables it (except for the
	// mem backend, which needs no directory).
	StoreDir string
	// StoreBackend selects the storage engine: "wal" (default, the
	// single-log group-commit store), "sharded" (N independent WAL
	// shards hashed by key) or "mem" (ephemeral, no disk). With
	// tenants, wal and mem share one physical store key-prefix-routed
	// per tenant; sharded gives each tenant its own shard directory
	// under StoreDir/tenants/<id>.
	StoreBackend string
	// StoreShards sets the shard count for the sharded backend; 0
	// adopts the directory's manifest (or store.DefaultShards when
	// fresh). Ignored by the other backends.
	StoreShards int
	// PersistDir enables measurement persistence; empty disables. With
	// tenants, each home persists under PersistDir/tenants/<id>.
	PersistDir string
	// MRTPath overrides the residence's Meta-Rule Table with a file in
	// the textual format (applied to every tenant).
	MRTPath string
	// Mode is EP (default when empty), IFTTT or manual.
	Mode string
	// Interval schedules the planner; <= 0 disables the cron so tests
	// can drive cycles explicitly over /rest/plan/run or Fleet().Cycle.
	Interval time.Duration
	// WeeklyBudgetKWh is the weekly energy allowance.
	WeeklyBudgetKWh float64
	// Emulate starts loopback HTTP device emulators per tenant and
	// routes all actuation through them (and the firewall).
	Emulate bool
	// Clock overrides the wall clock (tests use simclock.NewSimClock).
	// The clock is a shared substrate: every tenant plans against the
	// same time source.
	Clock simclock.Clock
	// Binding overrides device actuation (ignored with Emulate; tests
	// inject failing bindings to exercise health reporting).
	Binding controller.Binding
	// JournalCap bounds each tenant's decision-provenance journal ring;
	// 0 means DefaultJournalCap, negative disables journaling entirely.
	JournalCap int
	// JournalSyncEvery sets the decision journal's fsync cadence: every
	// N events, 0 for every event, negative for only on shutdown
	// (imcfd -journal-sync).
	JournalSyncEvery int
	// FS overrides the file layer under the store and the decision
	// journal (tests inject faultfs fakes to exercise crash recovery
	// and degraded mode); nil uses the real filesystem.
	FS faultfs.FS
	// Logf overrides the daemon's operator log; nil routes through the
	// structured obs logger (ring + optional JSON-line mirror).
	Logf func(format string, args ...any)
	// DebugAddr serves the debug mux — net/http/pprof, /debug/logs and
	// POST /debug/flight — on its own listener. Empty disables it: the
	// profiling surface is opt-in (imcfd -debug-addr).
	DebugAddr string
	// DiagnosticsDir enables the flight recorder: correlated diagnostic
	// bundles land under this directory on degraded-mode entry, SLO
	// page transitions, SIGQUIT and manual triggers. Empty disables the
	// recorder.
	DiagnosticsDir string
	// SLO overrides the SLO engine's thresholds; nil uses the obs
	// defaults (1% error budget, warn at 2x burn, page at 10x).
	SLO *obs.Config
	// StreamRingCap bounds each tenant's decision-stream delta ring
	// (served at /t/<id>/rest/stream); 0 means stream.DefaultRingCap,
	// negative disables streaming entirely.
	StreamRingCap int
}

// Daemon is a fully wired Local Controller process hosting one or more
// tenants.
type Daemon struct {
	tenants []*Tenant          // sorted by ID — deterministic iteration
	byID    map[string]*Tenant // routing lookup
	def     *Tenant            // serves the legacy un-prefixed routes
	defID   string
	multi   bool

	ctrl    *controller.Controller // default tenant's, for legacy access
	health  *metrics.Health        // default tenant's, wired to /healthz
	journal *journal.Journal       // default tenant's
	store   store.Adapter          // shared parent, or default tenant's
	sched   *fleet.Scheduler
	logf    func(string, ...any)
	clock   simclock.Clock

	slo      *obs.SLO
	recorder *obs.Recorder // nil without a diagnostics directory

	apiLn     net.Listener
	metricsLn net.Listener
	debugLn   net.Listener
	apiSrv    *http.Server
	metricSrv *http.Server
	debugSrv  *http.Server

	cron      *controller.Cron
	stopSched func()

	mu      sync.Mutex
	closed  bool
	closers []func() error // shutdown hooks, run in reverse order
}

// New builds the daemon and binds its listeners, but does not serve
// yet; call Serve. On error, everything partially constructed is torn
// down.
func New(opts Options) (_ *Daemon, err error) {
	logf := opts.Logf
	if logf == nil {
		logf = obsLogf
	}
	clock := opts.Clock
	if clock == nil {
		clock = simclock.RealClock{}
	}
	d := &Daemon{logf: logf, clock: clock, byID: make(map[string]*Tenant)}
	d.slo = obs.NewSLO(d.sloConfig(opts.SLO))
	defer func() {
		if err != nil {
			d.Close() //nolint:errcheck // already failing
		}
	}()

	backend := opts.StoreBackend
	if backend == "" {
		backend = "wal"
	}
	switch backend {
	case "wal", "sharded", "mem":
	default:
		return nil, fmt.Errorf("daemon: unknown store backend %q", opts.StoreBackend)
	}

	d.multi = len(opts.Tenants) > 0
	specs := opts.Tenants
	if !d.multi {
		specs = []TenantSpec{{
			ID:              DefaultTenantID,
			Residence:       opts.Residence,
			Seed:            opts.Seed,
			Mode:            opts.Mode,
			WeeklyBudgetKWh: opts.WeeklyBudgetKWh,
		}}
	}
	for _, spec := range specs {
		if err := ParseTenantID(spec.ID); err != nil {
			return nil, err
		}
		if _, dup := d.byID[spec.ID]; dup {
			return nil, fmt.Errorf("daemon: duplicate tenant ID %q", spec.ID)
		}
		d.byID[spec.ID] = nil // reserved; filled after construction
	}
	d.defID = specs[0].ID

	// The physical store. wal and mem open once and are shared by every
	// tenant through a key-prefix namespace; sharded opens one ShardedDB
	// per tenant so shard routing and compaction stay per-home.
	var parent store.Adapter
	if !(d.multi && backend == "sharded") {
		if parent, err = openStoreBackend(opts); err != nil {
			return nil, err
		}
		if parent != nil {
			d.closers = append(d.closers, parent.Close)
			d.store = parent
		}
	}

	for _, spec := range specs {
		var view store.Adapter
		switch {
		case parent != nil && d.multi:
			view = store.Namespace(parent, tenantStorePrefix(spec.ID))
		case parent != nil:
			view = parent // single-home: unprefixed, the historical layout
		case d.multi && backend == "sharded" && opts.StoreDir != "":
			db, err := store.OpenSharded(store.ShardedOptions{
				Dir:        tenantDir(opts.StoreDir, spec.ID),
				Shards:     opts.StoreShards,
				SyncWrites: true,
				FS:         opts.FS,
			})
			if err != nil {
				return nil, err
			}
			d.closers = append(d.closers, db.Close)
			view = db
		}
		t, err := d.newTenant(opts, spec, d.multi, view)
		if err != nil {
			return nil, err
		}
		d.tenants = append(d.tenants, t)
		d.byID[t.id] = t
	}
	// Sort by ID for deterministic fan-out and reporting; the default
	// tenant keeps its role by ID, not position.
	for i := 1; i < len(d.tenants); i++ {
		for j := i; j > 0 && d.tenants[j-1].id > d.tenants[j].id; j-- {
			d.tenants[j-1], d.tenants[j] = d.tenants[j], d.tenants[j-1]
		}
	}
	d.def = d.byID[d.defID]
	d.ctrl = d.def.ctrl
	d.health = d.def.health
	d.journal = d.def.journal
	if d.store == nil {
		d.store = d.def.store
	}

	if opts.DiagnosticsDir != "" {
		if d.recorder, err = d.newRecorder(opts); err != nil {
			return nil, err
		}
		for _, t := range d.tenants {
			t.flight = d.tenantFlight(t.id)
		}
	}

	members := make([]fleet.Member, len(d.tenants))
	for i, t := range d.tenants {
		t := t
		members[i] = fleet.Member{ID: t.id, Step: func(ctx context.Context) error {
			_, err := t.ctrl.StepCtx(ctx)
			return err
		}}
	}
	d.sched, err = fleet.New(members, fleet.Options{
		Workers: opts.FleetWorkers,
		OnError: func(id string, err error) {
			// A planner cycle that died on a full or failing disk must
			// degrade its tenant, not crash the daemon mid-plan.
			d.byID[id].noteError(err)
		},
		// Every cycle outcome feeds the per-tenant SLO windows; alert
		// states re-evaluate once per cycle, after the fan-out drains.
		ObserveResult: func(id string, seconds float64, err error) {
			d.slo.Observe(id, d.clock.Now(), seconds, err != nil)
		},
		AfterCycle: func() { d.slo.Evaluate(d.clock.Now()) },
	})
	if err != nil {
		return nil, err
	}

	if opts.Interval > 0 {
		d.cron = controller.NewCron(opts.Clock)
		d.stopSched = d.cron.Every(opts.Interval, func(time.Time) {
			if err := d.sched.Cycle(context.Background()); err != nil {
				logf("EP cycle: %v", err)
			}
		})
		logf("EP scheduled every %v for %d tenant(s), %d fleet worker(s)",
			opts.Interval, len(d.tenants), d.sched.Workers())
	}

	d.apiLn, err = net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	apiMux := http.NewServeMux()
	apiMux.HandleFunc("/t/{home}/", d.tenantAPI)
	apiMux.Handle("/", d.def.api) // legacy single-home routes → default tenant
	d.apiSrv = newHTTPServer(apiMux)
	if opts.MetricsAddr != "" {
		d.metricsLn, err = net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			return nil, err
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metrics.Handler())
		mux.Handle("GET /healthz", d.health.HandlerDetail(d.healthDetail))
		mux.Handle("GET /debug/spans", metrics.DefaultTracer().Handler())
		mux.Handle("GET /debug/exemplars", metrics.ExemplarHandler())
		mux.Handle("GET /debug/logs", obs.LogsHandler(obs.DefaultHandler().Ring()))
		if d.journal != nil {
			mux.HandleFunc("GET /debug/decisions", d.decisionsHandler)
			mux.HandleFunc("GET /debug/trace/{id}", d.traceHandler)
		}
		d.metricSrv = newHTTPServer(mux)
	}
	if opts.DebugAddr != "" {
		d.debugLn, err = net.Listen("tcp", opts.DebugAddr)
		if err != nil {
			return nil, err
		}
		d.debugSrv = newHTTPServer(d.debugMux())
	}
	return d, nil
}

// tenantAPI routes /t/{home}/... to the named tenant's REST API. The
// home segment is matched against the registered (pre-validated)
// tenant set — an unknown or hostile ID can only 404 here; it never
// reaches a store namespace, journal, or controller.
func (d *Daemon) tenantAPI(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("home")
	t, ok := d.byID[id]
	if !ok || t == nil {
		http.NotFound(w, r)
		return
	}
	t.strip.ServeHTTP(w, r)
}

// openStoreBackend builds the Adapter selected by StoreBackend. It
// returns (nil, nil) — no store at all — when the configuration
// disables persistence, so callers must check for nil before wiring;
// returning a typed-nil Adapter here would defeat those checks.
func openStoreBackend(opts Options) (store.Adapter, error) {
	switch opts.StoreBackend {
	case "", "wal":
		if opts.StoreDir == "" {
			return nil, nil
		}
		return store.Open(store.Options{Dir: opts.StoreDir, SyncWrites: true, FS: opts.FS})
	case "sharded":
		if opts.StoreDir == "" {
			return nil, nil
		}
		return store.OpenSharded(store.ShardedOptions{
			Dir:        opts.StoreDir,
			Shards:     opts.StoreShards,
			SyncWrites: true,
			FS:         opts.FS,
		})
	case "mem":
		return store.OpenMem(), nil
	default:
		return nil, fmt.Errorf("daemon: unknown store backend %q", opts.StoreBackend)
	}
}

// newHTTPServer applies the daemon's server hardening: header and body
// read deadlines so a stalled or malicious client cannot pin a
// connection open forever, and an idle timeout to reap keep-alives.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// mergedDecisions collects events across every tenant's journal in
// tenant-ID order, stamping the serving-time Tenant decoration onto the
// copies. The per-tenant rings themselves stay undecorated — identical
// to what a single-home daemon would hold, which is what the
// equivalence harness compares. Filter.Limit applies to the merged
// stream; Filter.Tenant selects one home.
func (d *Daemon) mergedDecisions(f journal.Filter) []journal.Event {
	limit := f.Limit
	tenantFilter := f.Tenant
	f.Limit = 0
	f.Tenant = ""
	out := []journal.Event{}
	for _, t := range d.tenants {
		if t.journal == nil || (tenantFilter != "" && t.id != tenantFilter) {
			continue
		}
		evs := t.journal.Recent(f)
		for i := range evs {
			evs[i].Tenant = t.id
		}
		out = append(out, evs...)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// decisionsHandler serves GET /debug/decisions across every tenant,
// with the journal's query-parameter filters plus tenant=<home>.
func (d *Daemon) decisionsHandler(w http.ResponseWriter, r *http.Request) {
	f, err := journal.ParseFilter(r.URL.Query())
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck // response committed
		return
	}
	json.NewEncoder(w).Encode(d.mergedDecisions(f)) //nolint:errcheck // response committed
}

// traceHandler serves GET /debug/trace/{id}: everything the daemon
// knows about one trace — its spans (from the in-memory tracer ring)
// and the planner decisions it caused, across all tenants.
func (d *Daemon) traceHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := metrics.DefaultTracer().ByTrace(id)
	decisions := d.mergedDecisions(journal.Filter{Trace: id})
	if spans == nil {
		spans = []metrics.SpanRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // response committed
		"trace":     id,
		"spans":     spans,
		"decisions": decisions,
	})
}

// Controller exposes the default tenant's Local Controller.
func (d *Daemon) Controller() *controller.Controller { return d.ctrl }

// Journal exposes the default tenant's decision-provenance journal, or
// nil when journaling is disabled (Options.JournalCap < 0).
func (d *Daemon) Journal() *journal.Journal { return d.journal }

// Health exposes the default tenant's health state (wired to /healthz).
func (d *Daemon) Health() *metrics.Health { return d.health }

// Tenant returns the named tenant, or nil if unknown.
func (d *Daemon) Tenant(id string) *Tenant {
	return d.byID[id]
}

// Tenants returns the hosted tenant IDs, sorted.
func (d *Daemon) Tenants() []string {
	ids := make([]string, len(d.tenants))
	for i, t := range d.tenants {
		ids[i] = t.id
	}
	return ids
}

// Fleet exposes the fleet scheduler; tests and embedders drive
// explicit planning cycles through it.
func (d *Daemon) Fleet() *fleet.Scheduler { return d.sched }

// APIAddr returns the REST listener's bound address.
func (d *Daemon) APIAddr() string { return d.apiLn.Addr().String() }

// MetricsAddr returns the observability listener's bound address, or ""
// when disabled.
func (d *Daemon) MetricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

// DebugAddr returns the debug (pprof/flight) listener's bound address,
// or "" when disabled.
func (d *Daemon) DebugAddr() string {
	if d.debugLn == nil {
		return ""
	}
	return d.debugLn.Addr().String()
}

// SLO exposes the per-tenant SLO engine.
func (d *Daemon) SLO() *obs.SLO { return d.slo }

// Recorder exposes the flight recorder, or nil when
// Options.DiagnosticsDir is empty.
func (d *Daemon) Recorder() *obs.Recorder { return d.recorder }

// Serve blocks serving every bound listener (API, metrics, debug) until
// Close is called. It returns the first serve error, or nil on clean
// shutdown.
func (d *Daemon) Serve() error {
	type bound struct {
		srv *http.Server
		ln  net.Listener
	}
	servers := []bound{{d.apiSrv, d.apiLn}}
	if d.metricSrv != nil {
		servers = append(servers, bound{d.metricSrv, d.metricsLn})
	}
	if d.debugSrv != nil {
		servers = append(servers, bound{d.debugSrv, d.debugLn})
	}
	errc := make(chan error, len(servers))
	for _, b := range servers {
		go func() { errc <- b.srv.Serve(b.ln) }()
	}
	var first error
	for range servers {
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && first == nil {
			first = err
			d.Close() //nolint:errcheck // tearing down after serve error
		}
	}
	return first
}

// Start runs Serve on a goroutine and returns immediately; serve errors
// go to the daemon's logger. Tests use Start + Close.
func (d *Daemon) Start() {
	// The goroutine's lifetime is bounded by the daemon, not a local
	// join: Serve parks in the listener loops and returns when Close
	// shuts them down, so Close is the join point.
	//imcf:allow goleak Serve returns when Close closes the listeners; Close is the join
	go func() {
		if err := d.Serve(); err != nil {
			d.logf("daemon: serve: %v", err)
		}
	}()
}

// Close shuts the daemon down: scheduler, HTTP servers, then the
// shutdown hooks (emulators, persistence, stores) in reverse order. It
// is idempotent.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()

	if d.stopSched != nil {
		d.stopSched()
	}
	if d.cron != nil {
		d.cron.Stop()
	}
	// Drain in-flight requests before tearing down the closers they may
	// depend on (store, persistence); force-close whatever is still
	// running when the grace period expires.
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	var firstErr error
	shutdown := func(srv *http.Server) {
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close() //nolint:errcheck // force close after drain timeout
			if firstErr == nil && !errors.Is(err, context.DeadlineExceeded) {
				firstErr = err
			}
		}
	}
	if d.apiSrv != nil {
		shutdown(d.apiSrv)
	} else if d.apiLn != nil {
		d.apiLn.Close() //nolint:errcheck // listener without server
	}
	if d.metricSrv != nil {
		shutdown(d.metricSrv)
	} else if d.metricsLn != nil {
		d.metricsLn.Close() //nolint:errcheck // listener without server
	}
	if d.debugSrv != nil {
		shutdown(d.debugSrv)
	} else if d.debugLn != nil {
		d.debugLn.Close() //nolint:errcheck // listener without server
	}
	for i := len(d.closers) - 1; i >= 0; i-- {
		if err := d.closers[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
