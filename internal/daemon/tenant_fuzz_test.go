package daemon

import (
	"net/url"
	"path/filepath"
	"strings"
	"testing"

	"github.com/imcf/imcf/internal/store"
)

// FuzzParseTenantID is the hostile-tenant-ID property test: any ID the
// validator accepts must be safe everywhere the daemon uses it — as a
// store-key prefix, as a persistence/journal directory element, and as
// a URL path segment. Any ID carrying a separator, dot-segment, or
// control byte must be rejected. The seed corpus under
// testdata/fuzz/FuzzParseTenantID commits the interesting attack
// shapes; `go test -fuzz=FuzzParseTenantID ./internal/daemon` explores
// from there.
func FuzzParseTenantID(f *testing.F) {
	for _, seed := range []string{
		"home", "h1", "flat-12.b_3", strings.Repeat("a", 64),
		"", ".", "..", "...", ".hidden", "-", "_x",
		"a/b", "../etc/passwd", "a/../b", `a\b`, "a b",
		"a\x00b", "a\nb", "a%2Fb", "café", "家", "t/h1",
		strings.Repeat("a", 65),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, id string) {
		err := ParseTenantID(id)

		// Inverse property: IDs with escape potential must never pass.
		hostile := id == "" || len(id) > maxTenantIDLen ||
			strings.ContainsAny(id, "/\\ \t\n\r\x00%?#") ||
			strings.HasPrefix(id, ".") || strings.HasPrefix(id, "-") ||
			strings.HasPrefix(id, "_")
		for i := 0; i < len(id); i++ {
			if id[i] < 0x20 || id[i] >= 0x7f {
				hostile = true
			}
		}
		if hostile && err == nil {
			t.Fatalf("ParseTenantID(%q) accepted a hostile ID", id)
		}
		if err != nil {
			return
		}

		// Accepted: the store prefix cannot alias another tenant's. IDs
		// carry no '/', so "t/<id>/" has exactly two separators and the
		// namespace boundary is unambiguous.
		prefix := tenantStorePrefix(id)
		if strings.Count(prefix, "/") != 2 {
			t.Fatalf("prefix %q has a separator smuggled in by %q", prefix, id)
		}

		// A write through the namespace lands under the prefix — and
		// only there.
		m := store.OpenMem()
		ns := store.Namespace(m, prefix)
		if err := ns.Put("imcf/mrt", []byte("x")); err != nil {
			t.Fatal(err)
		}
		keys := m.Keys("")
		if len(keys) != 1 || keys[0] != prefix+"imcf/mrt" {
			t.Fatalf("tenant %q wrote %v, want [%q]", id, keys, prefix+"imcf/mrt")
		}

		// As a directory element the ID stays inside the tenants/ tree:
		// joining and cleaning cannot climb out or rename the element.
		join := filepath.Join("persist", "tenants", id)
		if filepath.Dir(join) != filepath.Join("persist", "tenants") || filepath.Base(join) != id {
			t.Fatalf("ID %q escapes its directory: join = %q", id, join)
		}

		// As a URL path segment the ID is all unreserved characters: it
		// round-trips escaping unchanged, so the mux routes exactly the
		// registered literal.
		if url.PathEscape(id) != id {
			t.Fatalf("ID %q is not escape-stable (%q)", id, url.PathEscape(id))
		}
	})
}
