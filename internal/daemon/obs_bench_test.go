package daemon

import (
	"net/http/httptest"
	"testing"

	"github.com/imcf/imcf/internal/faultfs"
	"github.com/imcf/imcf/internal/obs"
)

// BenchmarkObsOverhead measures the observability tax on the serving
// path: one read request through the full tenant middleware chain
// (access log, degrade gate, trace middleware, controller API), with
// the obs layer in its production default (enabled, Info level — the
// Debug access-log record is level-gated away) versus globally
// disabled. The acceptance bar is <2% delta; `make obs-bench` turns
// the two cells into the BENCH_obs.json artifact.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		obs.SetEnabled(enabled)
		defer obs.SetEnabled(true)

		d, err := New(Options{
			Addr:            "127.0.0.1:0",
			Residence:       "prototype",
			Seed:            7,
			Mode:            "EP",
			WeeklyBudgetKWh: 165,
			StoreDir:        "/bench/store",
			FS:              faultfs.NewMemFS(),
			Logf:            func(string, ...any) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close() //nolint:errcheck // bench cleanup

		handler := d.Tenant(DefaultTenantID).api
		req := httptest.NewRequest("GET", "/rest/summary", nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("GET /rest/summary = %d", rec.Code)
			}
		}
	}
	b.Run("enabled", func(b *testing.B) { run(b, true) })
	b.Run("disabled", func(b *testing.B) { run(b, false) })
}
