package daemon

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/journal"
	"github.com/imcf/imcf/internal/metrics"
	"github.com/imcf/imcf/internal/simclock"
)

// TestDaemonJournalEndpointsAndRestart drives a traced planning cycle
// through the daemon, reads it back over /debug/decisions and
// /debug/trace/{id}, then restarts the daemon on the same persistence
// directory and checks the journal replayed — the acceptance path for
// "explain a decision after a restart".
func TestDaemonJournalEndpointsAndRestart(t *testing.T) {
	persistDir := t.TempDir()
	newDaemon := func() *Daemon {
		clock := simclock.NewSimClock(time.Date(2021, time.January, 9, 3, 0, 0, 0, time.UTC))
		d, err := New(Options{
			Addr:        "127.0.0.1:0",
			MetricsAddr: "127.0.0.1:0",
			Residence:   "flat",
			Seed:        7,
			Mode:        "EP",
			// Tight budget: forces drops so the journal has verdicts
			// worth explaining.
			WeeklyBudgetKWh: 5,
			PersistDir:      persistDir,
			Clock:           clock,
			Binding:         &flakyBinding{},
			Logf:            t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		return d
	}

	d := newDaemon()
	tc := metrics.NewTrace()

	// One traced planning cycle.
	req, err := http.NewRequest(http.MethodPost, "http://"+d.APIAddr()+"/rest/plan/run", nil)
	if err != nil {
		t.Fatal(err)
	}
	metrics.InjectTrace(req, tc)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/rest/plan/run = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("traceparent"); got == "" {
		t.Error("response did not echo a traceparent header")
	}

	obs := "http://" + d.MetricsAddr()
	decisions := getDecisions(t, obs+"/debug/decisions")
	if len(decisions) == 0 {
		t.Fatal("no journal events after a planning cycle")
	}
	dropped := getDecisions(t, obs+"/debug/decisions?verdict=dropped")
	if len(dropped) == 0 {
		t.Fatal("5 kWh/week budget dropped nothing")
	}
	for _, ev := range dropped {
		if ev.Trace != tc.TraceIDString() {
			t.Fatalf("event trace %q, want %q", ev.Trace, tc.TraceIDString())
		}
	}

	// The trace endpoint ties spans and decisions to the same ID.
	var tr struct {
		Trace     string               `json:"trace"`
		Spans     []metrics.SpanRecord `json:"spans"`
		Decisions []journal.Event      `json:"decisions"`
	}
	getJSON(t, obs+"/debug/trace/"+tc.TraceIDString(), &tr)
	if tr.Trace != tc.TraceIDString() {
		t.Fatalf("trace endpoint returned %q", tr.Trace)
	}
	if len(tr.Decisions) != len(decisions) {
		t.Fatalf("trace endpoint returned %d decisions, journal holds %d", len(tr.Decisions), len(decisions))
	}
	spanNames := make(map[string]bool)
	for _, sp := range tr.Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"http.api", "controller.step"} {
		if !spanNames[want] {
			t.Errorf("trace %s missing span %q (have %v)", tc.TraceIDString(), want, spanNames)
		}
	}

	// Exemplars endpoint responds and mentions the trace's histogram.
	if code := getStatus(t, obs+"/debug/exemplars"); code != http.StatusOK {
		t.Fatalf("/debug/exemplars = %d", code)
	}

	// Restart on the same directory: the journal must replay.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := newDaemon()
	defer d2.Close() //nolint:errcheck
	replayed := getDecisions(t, "http://"+d2.MetricsAddr()+"/debug/decisions")
	if len(replayed) != len(decisions) {
		t.Fatalf("restarted daemon replayed %d events, want %d", len(replayed), len(decisions))
	}
	if replayed[0].Seq != decisions[0].Seq || replayed[0].Rule != decisions[0].Rule {
		t.Fatalf("replayed journal diverges: %+v vs %+v", replayed[0], decisions[0])
	}
}

// TestDaemonJournalDisabled pins that JournalCap < 0 removes the
// journal and its endpoints.
func TestDaemonJournalDisabled(t *testing.T) {
	d, err := New(Options{
		Addr:            "127.0.0.1:0",
		MetricsAddr:     "127.0.0.1:0",
		Residence:       "flat",
		WeeklyBudgetKWh: 165,
		JournalCap:      -1,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	d.Start()
	if d.Journal() != nil {
		t.Fatal("JournalCap -1 still built a journal")
	}
	if code := getStatus(t, "http://"+d.MetricsAddr()+"/debug/decisions"); code != http.StatusNotFound {
		t.Fatalf("/debug/decisions with journaling disabled = %d, want 404", code)
	}
}

func getDecisions(t *testing.T, url string) []journal.Event {
	t.Helper()
	var out []journal.Event
	getJSON(t, url, &out)
	return out
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
