package daemon

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/imcf/imcf/internal/client"
	"github.com/imcf/imcf/internal/simclock"
	"github.com/imcf/imcf/internal/stream"
)

// The stream-equivalence harness is the delta-sync protocol's proof
// obligation (DESIGN.md §16): a mirror maintained incrementally over
// the stream — snapshot once, then coalesced deltas — must be
// BIT-IDENTICAL to a mirror rebuilt from scratch by polling the plain
// REST read surfaces, cycle after cycle, for every tenant of a fleet,
// across dropped connections and across a daemon restart. The sync
// path goes through a chaos proxy that slams the TCP connection on
// every other delta poll, so resume-after-disconnect is exercised
// constantly; the snapshot counters then prove those disconnects were
// absorbed by resume, never by a re-snapshot. A daemon restart mints
// new hub instances, forcing exactly one resync per tenant.

// streamEquivTenants is the fleet hosted by the harness daemon.
var streamEquivTenants = []TenantSpec{
	{ID: "alpha", Residence: "prototype", Seed: 7, WeeklyBudgetKWh: 165},
	{ID: "bravo", Residence: "flat", Seed: 1001, WeeklyBudgetKWh: 90},
	{ID: "charlie", Residence: "house", Seed: 1002, WeeklyBudgetKWh: 300},
	{ID: "delta", Residence: "prototype", Seed: 1003, WeeklyBudgetKWh: 120},
}

// streamChaos fronts the daemon for the sync clients: it forwards to
// whatever base URL is installed (swappable across a daemon restart),
// counts snapshot fetches per tenant, and kills every other delta poll
// at the TCP level before it reaches the daemon — the SDK's transport
// retry must resume seamlessly from the mirror's position.
type streamChaos struct {
	target atomic.Value // string: "http://host:port"
	polls  atomic.Int64
	kills  atomic.Int64

	mu    sync.Mutex
	snaps map[string]int
}

func (c *streamChaos) snapshots(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snaps[tenant]
}

func (c *streamChaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasSuffix(r.URL.Path, "/rest/stream/snapshot"):
		c.mu.Lock()
		if c.snaps == nil {
			c.snaps = make(map[string]int)
		}
		c.snaps[tenantOfPath(r.URL.Path)]++
		c.mu.Unlock()
	case strings.HasSuffix(r.URL.Path, "/rest/stream"):
		if c.polls.Add(1)%2 == 1 {
			c.kills.Add(1)
			panic(http.ErrAbortHandler) // slam the connection mid-protocol
		}
	}
	u, err := url.Parse(c.target.Load().(string))
	if err != nil {
		panic(err)
	}
	httputil.NewSingleHostReverseProxy(u).ServeHTTP(w, r)
}

// tenantOfPath extracts <id> from /t/<id>/rest/....
func tenantOfPath(path string) string {
	rest := strings.TrimPrefix(path, "/t/")
	if i := strings.IndexByte(rest, '/'); i > 0 {
		return rest[:i]
	}
	return rest
}

// newStreamEquivDaemon boots (or reboots) the harness fleet over the
// same on-disk state.
func newStreamEquivDaemon(t *testing.T, dir string, workers int, clk *simclock.SimClock) *Daemon {
	t.Helper()
	d, err := New(Options{
		Addr:         "127.0.0.1:0",
		Tenants:      streamEquivTenants,
		FleetWorkers: workers,
		StoreDir:     filepath.Join(dir, "store"),
		StoreBackend: "wal",
		PersistDir:   filepath.Join(dir, "persist"),
		Clock:        clk,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet daemon: %v", err)
	}
	d.Start()
	return d
}

// assertMirrorsConverge syncs every tenant's long-lived mirror (through
// the chaos proxy) and rebuilds a fresh poll mirror (directly against
// the daemon), then compares canonical bytes.
func assertMirrorsConverge(t *testing.T, label string, syncClients map[string]*client.Client,
	pollClients map[string]*client.Client, mirrors map[string]*stream.Mirror) {
	t.Helper()
	ctx := context.Background()
	for _, spec := range streamEquivTenants {
		if err := syncClients[spec.ID].Sync(ctx, mirrors[spec.ID]); err != nil {
			t.Fatalf("%s: tenant %s: sync: %v", label, spec.ID, err)
		}
		polled, err := pollClients[spec.ID].PollMirror(ctx)
		if err != nil {
			t.Fatalf("%s: tenant %s: poll: %v", label, spec.ID, err)
		}
		if got, want := mirrors[spec.ID].Canonical(), polled.Canonical(); !bytes.Equal(got, want) {
			t.Errorf("%s: tenant %s: sync-maintained mirror diverged from poll-built:\n  sync: %s\n  poll: %s",
				label, spec.ID, got, want)
		}
	}
}

// TestStreamEquivalence is the delta-sync headline gate.
func TestStreamEquivalence(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			clk := simclock.NewSimClock(equivStart)
			d := newStreamEquivDaemon(t, dir, workers, clk)

			chaos := &streamChaos{}
			chaos.target.Store("http://" + d.APIAddr())
			front := httptest.NewServer(chaos)
			t.Cleanup(front.Close)

			syncClients := make(map[string]*client.Client)
			pollClients := make(map[string]*client.Client)
			mirrors := make(map[string]*stream.Mirror)
			for _, spec := range streamEquivTenants {
				sc, err := client.New(front.URL+"/t/"+spec.ID, nil)
				if err != nil {
					t.Fatal(err)
				}
				pc, err := client.New("http://"+d.APIAddr()+"/t/"+spec.ID, nil)
				if err != nil {
					t.Fatal(err)
				}
				syncClients[spec.ID] = sc
				pollClients[spec.ID] = pc
				mirrors[spec.ID] = stream.NewMirror()
			}

			// Phase 1: planning cycles with an MRT edit halfway — every
			// cycle, sync must equal poll, tenant by tenant.
			const cycles = 6
			ctx := context.Background()
			for cycle := 0; cycle < cycles; cycle++ {
				if cycle == cycles/2 {
					for _, spec := range streamEquivTenants {
						mutateMRT(t, d, spec.ID, 1)
					}
				}
				if err := d.Fleet().Cycle(ctx); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
				clk.Advance(time.Hour)
				assertMirrorsConverge(t, fmt.Sprintf("cycle %d", cycle), syncClients, pollClients, mirrors)
			}

			// The chaos proxy really did drop connections, and every drop
			// was absorbed by resuming — one snapshot per tenant, total.
			if chaos.kills.Load() == 0 {
				t.Fatal("chaos proxy killed nothing — the disconnect path went unexercised")
			}
			for _, spec := range streamEquivTenants {
				if n := chaos.snapshots(spec.ID); n != 1 {
					t.Errorf("tenant %s fetched %d snapshots before the restart, want exactly 1 (disconnects must resume, not resync)",
						spec.ID, n)
				}
			}

			// Phase 2: daemon restart. New process, new hub instances;
			// each mirror's next sync answers 409, re-snapshots once, and
			// converges again over the restored state.
			if err := d.Close(); err != nil {
				t.Fatalf("close daemon: %v", err)
			}
			d2 := newStreamEquivDaemon(t, dir, workers, clk)
			defer d2.Close() //nolint:errcheck
			chaos.target.Store("http://" + d2.APIAddr())
			for _, spec := range streamEquivTenants {
				pc, err := client.New("http://"+d2.APIAddr()+"/t/"+spec.ID, nil)
				if err != nil {
					t.Fatal(err)
				}
				pollClients[spec.ID] = pc
			}

			assertMirrorsConverge(t, "post-restart", syncClients, pollClients, mirrors)
			for cycle := 0; cycle < 2; cycle++ {
				if err := d2.Fleet().Cycle(ctx); err != nil {
					t.Fatalf("post-restart cycle %d: %v", cycle, err)
				}
				clk.Advance(time.Hour)
				assertMirrorsConverge(t, fmt.Sprintf("post-restart cycle %d", cycle), syncClients, pollClients, mirrors)
			}
			for _, spec := range streamEquivTenants {
				if n := chaos.snapshots(spec.ID); n != 2 {
					t.Errorf("tenant %s fetched %d snapshots in total, want exactly 2 (one boot, one restart resync)",
						spec.ID, n)
				}
			}
		})
	}
}
