// Package devicesim provides in-process HTTP device emulators for the
// two Things the IMCF prototype controls: a Daikin-style split-unit air
// conditioner and a Hue-style dimmable light.
//
// The emulators speak the same unencrypted local-network protocols the
// paper's "extended mode" drives directly:
//
//	Daikin: GET /aircon/set_control_info?pow=1&mode=3&stemp=25&shum=0
//	        GET /aircon/get_control_info
//	Hue:    PUT /api/state  {"on": true, "bri": 40}
//	        GET /api/state
//
// They listen on loopback ports so controller bindings exercise real
// HTTP round-trips, and they count received commands so tests can prove
// that firewall-dropped rules produce no device traffic.
package devicesim

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
)

// Daikin emulates a split-unit A/C's local HTTP control interface.
type Daikin struct {
	mu       sync.Mutex
	power    bool
	mode     int
	setTemp  float64
	commands int

	srv      *http.Server
	listener net.Listener
}

// StartDaikin starts the emulator on a random loopback port.
func StartDaikin() (*Daikin, error) {
	d := &Daikin{setTemp: 22, mode: 3}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("devicesim: listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/aircon/set_control_info", d.handleSet)
	mux.HandleFunc("/aircon/get_control_info", d.handleGet)
	d.listener = ln
	d.srv = &http.Server{Handler: mux}
	go d.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return d, nil
}

// URL returns the emulator's base URL.
func (d *Daikin) URL() string { return "http://" + d.listener.Addr().String() }

// Close shuts the emulator down.
func (d *Daikin) Close() error { return d.srv.Close() }

func (d *Daikin) handleSet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pow := q.Get("pow")
	if pow != "0" && pow != "1" {
		http.Error(w, "ret=PARAM NG", http.StatusBadRequest)
		return
	}
	var stemp float64
	if s := q.Get("stemp"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 10 || v > 32 {
			http.Error(w, "ret=PARAM NG", http.StatusBadRequest)
			return
		}
		stemp = v
	}
	mode := 3
	if s := q.Get("mode"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 || v > 7 {
			http.Error(w, "ret=PARAM NG", http.StatusBadRequest)
			return
		}
		mode = v
	}

	d.mu.Lock()
	d.power = pow == "1"
	d.mode = mode
	if stemp != 0 {
		d.setTemp = stemp
	}
	d.commands++
	d.mu.Unlock()
	fmt.Fprint(w, "ret=OK,adv=")
}

func (d *Daikin) handleGet(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pow := 0
	if d.power {
		pow = 1
	}
	fmt.Fprintf(w, "ret=OK,pow=%d,mode=%d,stemp=%.1f,shum=0", pow, d.mode, d.setTemp)
}

// State returns the unit's power, mode and setpoint.
func (d *Daikin) State() (power bool, mode int, setTemp float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.power, d.mode, d.setTemp
}

// Commands returns how many set commands the unit has received.
func (d *Daikin) Commands() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.commands
}

// HueState is the JSON state of the light emulator.
type HueState struct {
	On  bool    `json:"on"`
	Bri float64 `json:"bri"` // 0–100 dimmer scale
}

// Hue emulates a dimmable light's local HTTP interface.
type Hue struct {
	mu       sync.Mutex
	state    HueState
	commands int

	srv      *http.Server
	listener net.Listener
}

// StartHue starts the emulator on a random loopback port.
func StartHue() (*Hue, error) {
	h := &Hue{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("devicesim: listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/state", h.handleState)
	h.listener = ln
	h.srv = &http.Server{Handler: mux}
	go h.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return h, nil
}

// URL returns the emulator's base URL.
func (h *Hue) URL() string { return "http://" + h.listener.Addr().String() }

// Close shuts the emulator down.
func (h *Hue) Close() error { return h.srv.Close() }

func (h *Hue) handleState(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		h.mu.Lock()
		st := h.state
		h.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st) //nolint:errcheck
	case http.MethodPut:
		var st HueState
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			http.Error(w, `{"error":"bad json"}`, http.StatusBadRequest)
			return
		}
		if st.Bri < 0 || st.Bri > 100 {
			http.Error(w, `{"error":"bri out of range"}`, http.StatusBadRequest)
			return
		}
		h.mu.Lock()
		h.state = st
		h.commands++
		h.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"success":true}`)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// State returns the light's current state.
func (h *Hue) State() HueState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Commands returns how many state commands the light has received.
func (h *Hue) Commands() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.commands
}
