package devicesim

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDaikinSetGet(t *testing.T) {
	d, err := StartDaikin()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get(d.URL() + "/aircon/set_control_info?pow=1&mode=3&stemp=25&shum=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ret=OK") {
		t.Fatalf("set returned %d %q", resp.StatusCode, body)
	}
	power, mode, temp := d.State()
	if !power || mode != 3 || temp != 25 {
		t.Errorf("state = %v %d %v", power, mode, temp)
	}
	if d.Commands() != 1 {
		t.Errorf("commands = %d", d.Commands())
	}

	resp, err = http.Get(d.URL() + "/aircon/get_control_info")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := string(body); !strings.Contains(got, "pow=1") || !strings.Contains(got, "stemp=25.0") {
		t.Errorf("get_control_info = %q", got)
	}

	// Power off.
	if _, err := http.Get(d.URL() + "/aircon/set_control_info?pow=0"); err != nil {
		t.Fatal(err)
	}
	if power, _, _ := d.State(); power {
		t.Error("power off ignored")
	}
}

func TestDaikinRejectsBadParams(t *testing.T) {
	d, err := StartDaikin()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, q := range []string{
		"pow=2",
		"pow=1&stemp=99",
		"pow=1&stemp=abc",
		"pow=1&mode=11",
		"",
	} {
		resp, err := http.Get(d.URL() + "/aircon/set_control_info?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q accepted with %d", q, resp.StatusCode)
		}
	}
	if d.Commands() != 0 {
		t.Errorf("rejected commands counted: %d", d.Commands())
	}
}

func TestHuePutGet(t *testing.T) {
	h, err := StartHue()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	payload, _ := json.Marshal(HueState{On: true, Bri: 40})
	req, _ := http.NewRequest(http.MethodPut, h.URL()+"/api/state", bytes.NewReader(payload))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	if st := h.State(); !st.On || st.Bri != 40 {
		t.Errorf("state = %+v", st)
	}

	resp, err = http.Get(h.URL() + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	var st HueState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.On || st.Bri != 40 {
		t.Errorf("GET state = %+v", st)
	}
}

func TestHueRejectsBadRequests(t *testing.T) {
	h, err := StartHue()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	req, _ := http.NewRequest(http.MethodPut, h.URL()+"/api/state", strings.NewReader("{bad"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON accepted: %d", resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodPut, h.URL()+"/api/state", strings.NewReader(`{"on":true,"bri":500}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bri 500 accepted: %d", resp.StatusCode)
	}

	resp, err = http.Post(h.URL()+"/api/state", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST accepted: %d", resp.StatusCode)
	}
	if h.Commands() != 0 {
		t.Errorf("rejected commands counted: %d", h.Commands())
	}
}
