module github.com/imcf/imcf

go 1.22
