#!/bin/sh
# obs_smoke.sh — prove the flight recorder end to end. Two stages:
#
#  1. The degraded-flip e2e: run the Go test that injects a disk-full
#     fault into a live tenant and asserts the resulting bundle's logs,
#     spans and journal all carry the triggering trace ID. Shell-level
#     disk faults can't reach a live daemon's already-open WAL, so the
#     honest degraded-transition assertion lives in the fault-injected
#     test and the script runs it by name.
#
#  2. A live imcfd: boot with the debug listener and a diagnostics
#     directory, dump one bundle via POST /debug/flight and one via
#     SIGQUIT, then read them back with imcf-debug — the listing must
#     show well-formed (non-TORN) bundles and the summary must resolve
#     every section.
#
# Run from the repo root (or via `make obs-smoke`).
set -eu

cd "$(dirname "$0")/.."

echo ">> stage 1: degraded-flip bundle correlation (fault-injected e2e)"
go test -count=1 -run 'TestDaemonDegradedFlightBundleCorrelation' ./internal/daemon

workdir=$(mktemp -d)
bin="$workdir/imcfd"
log="$workdir/imcfd.log"
diag="$workdir/diag"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo ">> building imcfd"
go build -o "$bin" ./cmd/imcfd

# Fixed loopback ports: ephemeral (:0) would work for the daemon but
# leave us unable to discover the bound port from a shell script, so
# pick high ports and let a rare clash fail loudly.
api_port=${IMCF_SMOKE_API_PORT:-18092}
obs_port=${IMCF_SMOKE_METRICS_PORT:-18093}
dbg_port=${IMCF_SMOKE_DEBUG_PORT:-18094}
obs="http://127.0.0.1:$obs_port"
dbg="http://127.0.0.1:$dbg_port"

echo ">> stage 2: starting imcfd (api :$api_port, metrics :$obs_port, debug :$dbg_port)"
"$bin" -addr "127.0.0.1:$api_port" -metrics-addr "127.0.0.1:$obs_port" \
    -debug-addr "127.0.0.1:$dbg_port" -diagnostics "$diag" \
    -residence prototype -interval 1h -log-level debug >"$log" 2>&1 &
pid=$!

ready=""
for _ in $(seq 1 50); do
    if curl -fsS "$obs/healthz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [ -z "$ready" ]; then
    echo "obs-smoke: FAIL — daemon never became ready" >&2
    cat "$log" >&2
    exit 1
fi

# The structured-log endpoint answers on the debug listener.
if ! curl -fsS "$dbg/debug/logs?limit=5" >/dev/null; then
    echo "obs-smoke: FAIL — /debug/logs not served" >&2
    exit 1
fi
# And so does the pprof index.
if ! curl -fsS "$dbg/debug/pprof/" >/dev/null; then
    echo "obs-smoke: FAIL — /debug/pprof/ not served" >&2
    exit 1
fi

echo ">> manual bundle via POST /debug/flight"
flight=$(curl -fsS -X POST "$dbg/debug/flight?reason=smoke")
case "$flight" in
*"$diag"*) ;;
*)
    echo "obs-smoke: FAIL — /debug/flight answered: $flight" >&2
    exit 1
    ;;
esac

echo ">> second bundle via SIGQUIT"
kill -QUIT "$pid"
# The SIGQUIT dump is asynchronous; wait for a second bundle directory.
got=""
for _ in $(seq 1 50); do
    count=$(find "$diag" -mindepth 1 -maxdepth 1 -type d 2>/dev/null | wc -l)
    if [ "$count" -ge 2 ]; then
        got=1
        break
    fi
    sleep 0.1
done
if [ -z "$got" ]; then
    echo "obs-smoke: FAIL — SIGQUIT produced no second bundle" >&2
    cat "$log" >&2
    exit 1
fi

echo ">> reading bundles back with imcf-debug"
listing=$(go run ./cmd/imcf-debug -dir "$diag")
echo "$listing"
case "$listing" in
*TORN*)
    echo "obs-smoke: FAIL — torn bundle in listing" >&2
    exit 1
    ;;
*smoke*) ;;
*)
    echo "obs-smoke: FAIL — manual bundle missing from listing" >&2
    exit 1
    ;;
esac
case "$listing" in
*sigquit*) ;;
*)
    echo "obs-smoke: FAIL — sigquit bundle missing from listing" >&2
    exit 1
    ;;
esac

bundle=$(find "$diag" -mindepth 1 -maxdepth 1 -type d | sort | head -1)
summary=$(go run ./cmd/imcf-debug -bundle "$bundle")
for section in logs.jsonl spans.json journal.jsonl metrics.prom goroutines.txt; do
    case "$summary" in
    *"$section"*) ;;
    *)
        echo "obs-smoke: FAIL — section $section missing from summary of $bundle" >&2
        echo "$summary" >&2
        exit 1
        ;;
    esac
done

echo "obs-smoke: OK"
