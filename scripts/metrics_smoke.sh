#!/bin/sh
# metrics_smoke.sh — boot imcfd on ephemeral ports, run one planning
# cycle, and verify the /metrics and /healthz endpoints serve the core
# metric families. Run from the repo root (or via `make metrics-smoke`).
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
bin="$workdir/imcfd"
log="$workdir/imcfd.log"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo ">> building imcfd"
go build -o "$bin" ./cmd/imcfd

# Fixed loopback ports: ephemeral (:0) would work for the daemon but
# leave us unable to discover the bound port from a shell script, so
# pick two high ports and let a rare clash fail loudly.
api_port=${IMCF_SMOKE_API_PORT:-18088}
obs_port=${IMCF_SMOKE_METRICS_PORT:-18089}
api="http://127.0.0.1:$api_port"
obs="http://127.0.0.1:$obs_port"

echo ">> starting imcfd (api :$api_port, metrics :$obs_port)"
"$bin" -addr "127.0.0.1:$api_port" -metrics-addr "127.0.0.1:$obs_port" \
    -residence prototype -interval 1h >"$log" 2>&1 &
pid=$!

# Wait for /healthz to answer.
ready=""
for _ in $(seq 1 50); do
    if curl -fsS "$obs/healthz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [ -z "$ready" ]; then
    echo "metrics-smoke: FAIL — daemon never became ready" >&2
    cat "$log" >&2
    exit 1
fi

echo ">> running one planning cycle"
curl -fsS -X POST -d '{}' "$api/rest/plan/run" >/dev/null

echo ">> scraping $obs/metrics"
scrape=$(curl -fsS "$obs/metrics")

for family in \
    imcf_planner_window_seconds_bucket \
    imcf_planner_plans_total \
    imcf_rules_considered_total \
    imcf_rules_executed_total \
    imcf_rules_dropped_total \
    imcf_energy_consumed_kwh \
    imcf_controller_steps_total \
    imcf_healthy; do
    if ! echo "$scrape" | grep -q "^$family"; then
        echo "metrics-smoke: FAIL — family $family missing from /metrics" >&2
        exit 1
    fi
done

health=$(curl -fsS "$obs/healthz")
case "$health" in
*'"status":"ok"'*) ;;
*)
    echo "metrics-smoke: FAIL — /healthz says: $health" >&2
    exit 1
    ;;
esac

echo "metrics-smoke: OK"
