#!/bin/sh
# check.sh — the repo's verification gate: build, vet, then the full
# test suite under the race detector. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test -race ./..."
go test -race ./...

echo ">> go test -cover ./internal/..."
cover_out=$(go test -cover ./internal/...)
echo "$cover_out"

# Every internal package must ship tests: a "[no test files]" line in
# the coverage run is a gate failure, not a warning.
if echo "$cover_out" | grep -q 'no test files'; then
    echo "check: FAIL — internal packages without tests:" >&2
    echo "$cover_out" | grep 'no test files' >&2
    exit 1
fi

# The metrics registry is the serving path's observability substrate;
# hold it to a 90% statement-coverage floor.
metrics_cov=$(echo "$cover_out" | awk '
    $2 ~ /\/internal\/metrics$/ {
        for (i = 1; i <= NF; i++)
            if ($i ~ /^[0-9.]+%$/) { sub(/%/, "", $i); print $i }
    }')
if [ -z "$metrics_cov" ]; then
    echo "check: FAIL — no coverage figure for internal/metrics" >&2
    exit 1
fi
if ! awk -v c="$metrics_cov" 'BEGIN { exit !(c >= 90) }'; then
    echo "check: FAIL — internal/metrics coverage ${metrics_cov}% is below the 90% floor" >&2
    exit 1
fi
echo "internal/metrics coverage ${metrics_cov}% (floor 90%)"

echo "check: OK"
