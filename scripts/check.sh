#!/bin/sh
# check.sh — the repo's verification gate: format, build, vet, lint,
# then the full test suite under the race detector. Run from the repo
# root.
set -eu

cd "$(dirname "$0")/.."

echo ">> gofmt -l"
fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
    echo "check: FAIL — files need gofmt:" >&2
    echo "$fmt_out" >&2
    exit 1
fi

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

# imcf-lint runs before the race suite: static findings are cheaper to
# surface than a full -race cycle. The suite includes the CFG-based
# rules (lockdiscipline, tenantisolation, osbypass, goleak; DESIGN.md
# §14). The driver exits 2 when lint.baseline lists findings that no
# longer exist (stale entries) or when an //imcf:allow waiver
# suppresses nothing, so neither baselines nor waivers rot.
echo ">> imcf-lint ./..."
go run ./cmd/imcf-lint ./...

# Tracing-overhead gate: the disabled tracing/journaling paths must
# stay allocation-free (testing.AllocsPerRun == 0). Run outside -race
# (the detector's instrumentation allocates and would mask regressions).
echo ">> go test -run AllocsTrace ./internal/metrics ./internal/journal"
go test -run AllocsTrace -count=1 ./internal/metrics ./internal/journal

# Store append-path allocation gate: one Put must stay within its small
# pooled-scratch budget (see internal/store/alloc_test.go). Also
# outside -race for the same reason.
echo ">> go test -run StorePutAllocs ./internal/store"
go test -run StorePutAllocs -count=1 ./internal/store

# Logging disabled-path allocation gate: a level-gated or globally
# disabled log call on the serving path must not allocate at all
# (see internal/obs/obs_test.go). Also outside -race.
echo ">> go test -run AllocsObs ./internal/obs"
go test -run AllocsObs -count=1 ./internal/obs

# Crash suite: kill-at-every-failpoint recovery for the store (single
# log and sharded — CrashRecoveryEveryFailpoint matches both) and the
# decision journal, the cross-shard commit-ordering window, the
# multi-tenant fleet crash suite (shared-WAL namespaces and per-tenant
# sharded layouts — a crash mid-fleet-cycle must leave every tenant at
# a point in its own history), plus the daemon degraded-mode e2e
# (DESIGN.md §11, §12, §13). Runs without -race first so a durability
# regression fails fast with the failpoint identified, before the
# slower race cycle repeats it.
echo ">> crash suite (kill-at-every-failpoint)"
go test -count=1 \
    -run 'CrashRecoveryEveryFailpoint|ShardedCrashBetweenShardCommits|CompactionRenameDurability|FailedCompactionLeavesCleanErrors|JournalCrashRecoveryEveryFailpoint|DaemonDegradedMode|FleetCrashSharedWAL|FleetCrashPerTenantSharded|RecorderCrashEveryFailpoint|DaemonDegradedFlightBundleCorrelation' \
    ./internal/store ./internal/persistence ./internal/daemon ./internal/obs

# Tenant-equivalence harness: the multi-home tentpole gate (DESIGN.md
# §13) — one home hosted solo and hosted as a fleet tenant among noisy
# neighbors must produce bit-identical journal hashes, event streams,
# persisted decision logs and recovered store state, at 1 and 8 fleet
# workers. StreamEquivalence is the delta-sync gate (DESIGN.md §16): a
# mirror maintained over the stream protocol — through a chaos proxy
# dropping every other delta poll, and across a daemon restart — must
# stay bit-identical to one rebuilt by polling, for every fleet tenant.
echo ">> tenant-equivalence harness"
go test -count=1 -run 'FleetTenantEquivalence|ObsEquivalence|StreamEquivalence' ./internal/daemon

echo ">> go test -race ./..."
go test -race ./...

echo ">> go test -cover ./internal/..."
cover_out=$(go test -cover ./internal/...)
echo "$cover_out"

# Every internal package must ship tests: a "[no test files]" line in
# the coverage run is a gate failure, not a warning.
if echo "$cover_out" | grep -q 'no test files'; then
    echo "check: FAIL — internal packages without tests:" >&2
    echo "$cover_out" | grep 'no test files' >&2
    exit 1
fi

# Coverage floors. internal/metrics is the serving path's
# observability substrate; internal/analysis is the lint rule suite,
# whose false negatives silently erode the invariants it guards;
# internal/journal is the decision-provenance record whose gaps would
# make "why was rule R dropped" unanswerable; internal/faultfs is the
# fault-injection seam the crash suite's guarantees rest on — an
# untested injector proves nothing about the code it instruments;
# internal/store carries the durability guarantees every other
# subsystem builds on; internal/fleet is the multi-home scheduler whose
# determinism the tenant-equivalence proof rests on; internal/obs is
# the flight-recorder stack — untested diagnostics lie exactly when
# they are needed; internal/stream is the delta-sync protocol core —
# an uncovered resume/coalesce edge is a silent replica-divergence bug.
check_floor() {
    pkg="$1" floor="$2"
    cov=$(echo "$cover_out" | awk -v p="/$pkg\$" '
        $2 ~ p {
            for (i = 1; i <= NF; i++)
                if ($i ~ /^[0-9.]+%$/) { sub(/%/, "", $i); print $i }
        }')
    if [ -z "$cov" ]; then
        echo "check: FAIL — no coverage figure for $pkg" >&2
        exit 1
    fi
    if ! awk -v c="$cov" -v f="$floor" 'BEGIN { exit !(c >= f) }'; then
        echo "check: FAIL — $pkg coverage ${cov}% is below the ${floor}% floor" >&2
        exit 1
    fi
    echo "$pkg coverage ${cov}% (floor ${floor}%)"
}
check_floor internal/metrics 90
check_floor internal/analysis 90
check_floor internal/journal 90
check_floor internal/faultfs 90
check_floor internal/store 90
check_floor internal/fleet 90
check_floor internal/obs 90
check_floor internal/stream 90

echo "check: OK"
