#!/bin/sh
# check.sh — the repo's verification gate: build, vet, then the full
# test suite under the race detector. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test -race ./..."
go test -race ./...

echo "check: OK"
