#!/bin/sh
# explain_smoke.sh — the explainability acceptance path as a shell
# smoke: boot imcfd with persistence and a tight budget, run a planning
# cycle so the Energy Planner drops a rule, restart the daemon, and ask
# the real imcf-explain binary why — the answer must come from the
# replayed on-disk journal and cite the E_p budget. Run from the repo
# root (or via `make explain-smoke`).
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
bin="$workdir/imcfd"
explain="$workdir/imcf-explain"
log="$workdir/imcfd.log"
persist="$workdir/persist"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo ">> building imcfd and imcf-explain"
go build -o "$bin" ./cmd/imcfd
go build -o "$explain" ./cmd/imcf-explain

api_port=${IMCF_SMOKE_API_PORT:-18090}
obs_port=${IMCF_SMOKE_METRICS_PORT:-18091}
api="http://127.0.0.1:$api_port"
obs="http://127.0.0.1:$obs_port"

start_daemon() {
    # A 5 kWh weekly budget guarantees drops, so the journal always has
    # a verdict worth explaining.
    "$bin" -addr "127.0.0.1:$api_port" -metrics-addr "127.0.0.1:$obs_port" \
        -residence flat -interval 1h -weekly-budget 5 -persist "$persist" \
        >>"$log" 2>&1 &
    pid=$!
    ready=""
    for _ in $(seq 1 50); do
        if curl -fsS "$obs/healthz" >/dev/null 2>&1; then
            ready=1
            break
        fi
        sleep 0.1
    done
    if [ -z "$ready" ]; then
        echo "explain-smoke: FAIL — daemon never became ready" >&2
        cat "$log" >&2
        exit 1
    fi
}

echo ">> starting imcfd (api :$api_port, metrics :$obs_port)"
start_daemon

echo ">> running one planning cycle"
curl -fsS -X POST -d '{}' "$api/rest/plan/run" >/dev/null

echo ">> finding a dropped rule in /debug/decisions"
dropped_rule=$(curl -fsS "$obs/debug/decisions?verdict=dropped&limit=1" |
    sed -n 's/.*"rule":"\([^"]*\)".*/\1/p')
if [ -z "$dropped_rule" ]; then
    echo "explain-smoke: FAIL — no dropped rule in the journal" >&2
    exit 1
fi
echo "   dropped: $dropped_rule"

echo ">> restarting imcfd"
kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
start_daemon

echo ">> explaining the drop against the restarted daemon"
answer=$("$explain" -rule "$dropped_rule" -verdict dropped -daemon "$obs")
echo "$answer"
case "$answer" in
*"E_p remaining"*) ;;
*)
    echo "explain-smoke: FAIL — explanation does not cite E_p remaining" >&2
    exit 1
    ;;
esac

echo "explain-smoke: OK"
